type chaos = {
  chaos_seed : int;
  drop_conn : float;
  partial_frame : float;
  truncate_frame : float;
  kill_child : float;
  corrupt_journal : float;
  max_chaos_delay : float;
}

let default_chaos ~seed =
  {
    chaos_seed = seed;
    drop_conn = 0.10;
    partial_frame = 0.20;
    truncate_frame = 0.10;
    kill_child = 0.25;
    corrupt_journal = 0.10;
    max_chaos_delay = 0.05;
  }

type config = {
  jobs : int;
  isolation : [ `In_domain | `Process ];
  queue_limit : int;
  retries : int;
  kill_grace : float;
  default_deadline : float option;
  backoff : Backoff.config;
  max_frame : int;
  chaos : chaos option;
}

let default_config =
  {
    jobs = 2;
    isolation = `Process;
    queue_limit = 64;
    retries = 2;
    kill_grace = 0.5;
    default_deadline = None;
    backoff = Backoff.default;
    max_frame = Wire.default_max_payload;
    chaos = None;
  }

let validate_config c =
  if c.jobs < 1 then invalid_arg "Server: jobs must be >= 1";
  if c.queue_limit < 1 then invalid_arg "Server: queue_limit must be >= 1";
  if c.retries < 0 then invalid_arg "Server: retries must be >= 0";
  if c.kill_grace <= 0. then invalid_arg "Server: kill_grace must be positive";
  (match c.default_deadline with
  | Some t when t <= 0. -> invalid_arg "Server: default_deadline must be positive"
  | _ -> ());
  if c.max_frame < 1 then invalid_arg "Server: max_frame must be >= 1";
  Backoff.validate c.backoff;
  match c.chaos with
  | None -> ()
  | Some ch ->
      let prob what p =
        if p < 0. || p > 1. then
          invalid_arg ("Server: chaos " ^ what ^ " must be a probability")
      in
      prob "drop_conn" ch.drop_conn;
      prob "partial_frame" ch.partial_frame;
      prob "truncate_frame" ch.truncate_frame;
      prob "kill_child" ch.kill_child;
      prob "corrupt_journal" ch.corrupt_journal;
      if ch.max_chaos_delay < 0. then
        invalid_arg "Server: chaos max_chaos_delay must be >= 0"

(* ------------------------------ plumbing ------------------------------ *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    match Unix.write fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len
  end

let sockaddr_of_spec spec =
  match String.index_opt spec ':' with
  | Some 3 when String.sub spec 0 3 = "tcp" -> (
      let port = String.sub spec 4 (String.length spec - 4) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          (Unix.ADDR_INET (Unix.inet_addr_loopback, p), None)
      | _ -> invalid_arg ("Server: bad tcp socket spec " ^ spec))
  | _ -> (Unix.ADDR_UNIX spec, Some spec)

let job_id ~kind ~payload = Digest.to_hex (Digest.string (kind ^ "\x00" ^ payload))

let status_of_result r =
  if String.length r >= 7 && String.sub r 0 7 = "ERROR: " then "error"
  else if String.length r >= 11 && String.sub r 0 11 = "QUARANTINED" then
    "quarantined"
  else "ok"

(* ------------------------------- state -------------------------------- *)

type jstate = Queued | Running | Finished of { status : string; result : string }

type job = {
  id : string;
  kind : string;
  payload : string;
  deadline : float option;  (* per-attempt seconds; None = config default *)
  mutable state : jstate;
  mutable waiters : int list;  (* conn ids, most recent first *)
  mutable failures : Supervisor.failure list;  (* newest first *)
  mutable attempts : int;  (* spawns so far *)
}

type conn = {
  cid : int;
  fd : Unix.file_descr;
  dec : Wire.decoder;
  out : Buffer.t;
  (* chaos: chunks that must reach [out] in order, each no earlier than
     its due time — once anything is deferred, later sends defer too *)
  mutable deferred : (float * string) list;
  mutable close_after_out : bool;
  mutable close_reason : string;
  mutable closed : bool;
}

type child = {
  pid : int;
  cjob : job;
  cfd : Unix.file_descr;
  cdec : Wire.decoder;
  started : float;
  mutable reply : (char * string) option;
  mutable cstats : string option;  (* 'S' frame, pending the 'R' *)
  mutable bad : string option;
  mutable term_at : float option;
  mutable killed : bool;
  mutable timed_out : bool;
  mutable kill_at : float option;  (* chaos SIGKILL due time *)
  mutable chaos_killed : bool;
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable errors : int;
  mutable quarantined : int;
  mutable dedup_cached : int;
  mutable dedup_inflight : int;
  mutable retries : int;
  mutable recovered : int;
  mutable conns_opened : int;
  mutable chaos_injected : int;
}

(* -------------------------- process children -------------------------- *)

let child_main ~handler ~(job : job) w =
  Trace.detach_in_child ();
  (* Drop the stats shards inherited from the parent image: what this
     child drains into its 'S' frame must be this job's own
     contribution, nothing more. *)
  Stats.reset ();
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let reply tag payload =
    let frame = Wire.encode ~tag payload in
    try write_all w frame 0 (Bytes.length frame) with Unix.Unix_error _ -> ()
  in
  (match handler ~kind:job.kind ~payload:job.payload with
  | r ->
      (* Stats travel in their own frame, before the result: the parent
         stashes the snapshot and only counts it once the same
         attempt's 'R' lands (a child dying in between is retried and
         the stale snapshot dies with its child record). *)
      (if Stats.on () then
         match Stats.drain () with
         | [] -> ()
         | snap -> reply 'S' (Stats.to_string snap));
      reply 'R' r
  | exception exn ->
      (* Contained in the child: no job, however pathological, takes the
         server down with it. *)
      reply 'E' (Printexc.to_string exn));
  Unix._exit 0

(* ----------------------------- the server ----------------------------- *)

let run ?(config = default_config) ?journal ?(resume = false)
    ?(should_stop = fun () -> false) ?(on_ready = fun () -> ()) ~socket
    ~handler () =
  validate_config config;
  let sockaddr, unix_path = sockaddr_of_spec socket in
  let stats =
    {
      accepted = 0;
      rejected = 0;
      completed = 0;
      errors = 0;
      quarantined = 0;
      dedup_cached = 0;
      dedup_inflight = 0;
      retries = 0;
      recovered = 0;
      conns_opened = 0;
      chaos_injected = 0;
    }
  in
  let metric name = if Metrics.on () then Metrics.incr name in
  (* chaos schedule: a splitmix stream off the chaos seed *)
  let rng_state =
    ref (Int64.mul (Int64.of_int (match config.chaos with
                                  | Some c -> c.chaos_seed
                                  | None -> 0))
           0x9E3779B97F4A7C15L)
  in
  let draw () =
    rng_state := Int64.add !rng_state 0x9E3779B97F4A7C15L;
    Int64.to_float (Int64.shift_right_logical (Backoff.mix64 !rng_state) 11)
    /. 9007199254740992.
  in
  let chaos_fire kind =
    stats.chaos_injected <- stats.chaos_injected + 1;
    metric ("server.chaos." ^ kind);
    if Trace.on () then Trace.emit (Trace.Chaos_injected { kind })
  in
  (* ------------------------------ jobs ------------------------------ *)
  let jobs_tbl : (string, job) Hashtbl.t = Hashtbl.create 64 in
  let pending : job Queue.t = Queue.create () in
  (* domain-mode shared state; allocated lazily only under `In_domain *)
  let dmutex = Mutex.create () in
  let dcond = Condition.create () in
  let dstop = ref false in
  let drunning = ref 0 in
  let dout : (string * string * string * string) list ref = ref [] in
  let omutex = Mutex.create () in
  let pipe_r, pipe_w =
    match config.isolation with
    | `In_domain -> Unix.pipe ~cloexec:true ()
    | `Process -> (Unix.stdin, Unix.stdin)  (* unused *)
  in
  let queued_count () =
    match config.isolation with
    | `Process -> Queue.length pending
    | `In_domain -> Mutex.protect dmutex (fun () -> Queue.length pending)
  in
  let enqueue_job job =
    match config.isolation with
    | `Process -> Queue.push job pending
    | `In_domain ->
        Mutex.protect dmutex (fun () -> Queue.push job pending);
        Condition.signal dcond
  in
  (* --------------------------- journaling --------------------------- *)
  let jnl =
    Option.map (fun path -> Sweep.Journal.open_out ~resume path) journal
  in
  (* chaos: simulate the disk eating the record we just flushed — a
     seeded bit-flip inside the last journal line, or a truncation of
     its tail (repaired to stay newline-terminated so later appends
     still land on their own lines).  Either way the record fails its
     v2 CRC on the next load and is skipped with the typed warning;
     the affected job simply reruns after restart, so chaos soaks
     exercise the full corruption-recovery path end to end. *)
  let chaos_corrupt_tail path =
    match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let size = (Unix.fstat fd).Unix.st_size in
            if size > 2 then begin
              (* locate the start of the final newline-terminated record *)
              let look = min size 512 in
              let buf = Bytes.create look in
              ignore (Unix.lseek fd (size - look) Unix.SEEK_SET);
              let got = ref 0 in
              (try
                 while !got < look do
                   match Unix.read fd buf !got (look - !got) with
                   | 0 -> raise Exit
                   | n -> got := !got + n
                 done
               with Exit | Unix.Unix_error _ -> ());
              let record_start =
                match Bytes.rindex_from_opt buf (!got - 2) '\n' with
                | Some i -> size - !got + i + 1
                | None -> size - !got
              in
              let span = size - 1 - record_start in
              if span > 0 then
                if draw () < 0.5 then begin
                  (* torn tail: keep half the record, restore the newline *)
                  let keep = max 1 (span / 2) in
                  Unix.ftruncate fd (record_start + keep);
                  ignore (Unix.lseek fd 0 Unix.SEEK_END);
                  ignore
                    (Unix.write fd (Bytes.of_string "\n") 0 1)
                end
                else begin
                  (* flip one bit somewhere in the record *)
                  let off =
                    record_start + int_of_float (draw () *. float_of_int span)
                  in
                  let off = min off (size - 2) in
                  let b = Bytes.create 1 in
                  ignore (Unix.lseek fd off Unix.SEEK_SET);
                  if Unix.read fd b 0 1 = 1 then begin
                    let bit = 1 lsl (int_of_float (draw () *. 8.) land 7) in
                    Bytes.set b 0
                      (Char.chr (Char.code (Bytes.get b 0) lxor bit));
                    ignore (Unix.lseek fd off Unix.SEEK_SET);
                    ignore (Unix.write fd b 0 1)
                  end
                end
            end)
  in
  let chaos_after_append () =
    match (config.chaos, journal) with
    | Some c, Some path when c.corrupt_journal > 0. && draw () < c.corrupt_journal
      ->
        chaos_fire "corrupt_journal";
        chaos_corrupt_tail path
    | _ -> ()
  in
  let journal_accept job =
    Option.iter
      (fun j ->
        let deadline_ms =
          match job.deadline with
          | None -> ""
          | Some s -> string_of_int (int_of_float (s *. 1000.))
        in
        Sweep.Journal.append j ~key:("j:" ^ job.id)
          (job.kind ^ "\t" ^ deadline_ms ^ "\t" ^ job.payload);
        chaos_after_append ())
      jnl
  in
  let journal_done job result =
    Option.iter
      (fun j ->
        Sweep.Journal.append j ~key:("d:" ^ job.id) result;
        chaos_after_append ())
      jnl
  in
  (* ---------------------------- connections -------------------------- *)
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let close_conn conn reason =
    if not conn.closed then begin
      conn.closed <- true;
      Hashtbl.remove conns conn.cid;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      if Trace.on () then
        Trace.emit (Trace.Conn_close { conn = conn.cid; reason })
    end
  in
  (* enqueue bytes on a connection, through the chaos harness *)
  let send conn (frame : bytes) =
    if (not conn.closed) && not conn.close_after_out then begin
      let s = Bytes.to_string frame in
      let now = Unix.gettimeofday () in
      let defer due chunk =
        conn.deferred <- conn.deferred @ [ (due, chunk) ]
      in
      match config.chaos with
      | Some c when conn.deferred <> [] ->
          (* keep stream order behind already-deferred chunks *)
          ignore c;
          defer now s
      | Some c when String.length s > 1 && draw () < c.truncate_frame ->
          chaos_fire "truncate_frame";
          Buffer.add_string conn.out (String.sub s 0 (String.length s / 2));
          conn.close_after_out <- true;
          conn.close_reason <- "truncate_frame"
      | Some c when String.length s > 1 && draw () < c.partial_frame ->
          chaos_fire "partial_frame";
          let half = String.length s / 2 in
          Buffer.add_string conn.out (String.sub s 0 half);
          defer
            (now +. (draw () *. c.max_chaos_delay))
            (String.sub s half (String.length s - half))
      | _ -> Buffer.add_string conn.out s
    end
  in
  let flush_deferred conn now =
    let rec go = function
      | (due, chunk) :: rest when due <= now ->
          Buffer.add_string conn.out chunk;
          go rest
      | rest -> rest
    in
    conn.deferred <- go conn.deferred
  in
  let send_result conn (job : job) result =
    send conn (Wire.encode ~tag:'R' (job.id ^ "\t" ^ result))
  in
  (* ------------------------- job completion ------------------------- *)
  let drain_req = Atomic.make false in
  let draining = ref false in
  let complete ?(stats_delta = "") (job : job) status result =
    job.state <- Finished { status; result };
    journal_done job (Sweep.join_delta result stats_delta);
    stats.completed <- stats.completed + 1;
    (match status with
    | "error" -> stats.errors <- stats.errors + 1
    | "quarantined" -> stats.quarantined <- stats.quarantined + 1
    | _ -> ());
    metric "server.completed";
    if Trace.on () then Trace.emit (Trace.Job_done { id = job.id; status });
    List.iter
      (fun cid ->
        match Hashtbl.find_opt conns cid with
        | Some conn -> send_result conn job result
        | None -> ())
      (List.rev job.waiters);
    job.waiters <- []
  in
  (* ------------------------- process backend ------------------------ *)
  let children : child list ref = ref [] in
  (* (due, job) retry schedule, sorted by due time *)
  let retry_queue : (float * job) list ref = ref [] in
  let schedule_retry job =
    let delay = Backoff.delay config.backoff ~key:job.id ~attempt:job.attempts in
    if Trace.on () then
      Trace.emit (Trace.Cell_retry { key = job.id; attempt = job.attempts; delay });
    let due = Unix.gettimeofday () +. delay in
    let rec insert = function
      | [] -> [ (due, job) ]
      | (d, _) :: _ as l when due < d -> (due, job) :: l
      | x :: rest -> x :: insert rest
    in
    retry_queue := insert !retry_queue
  in
  let spawn job =
    job.state <- Running;
    let attempt = job.attempts in
    job.attempts <- attempt + 1;
    if Trace.on () then Trace.emit (Trace.Job_start { id = job.id; attempt });
    metric "server.job_starts";
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        child_main ~handler ~job w
    | pid ->
        Unix.close w;
        let kill_at =
          match config.chaos with
          | Some c when draw () < c.kill_child ->
              Some (Unix.gettimeofday () +. (draw () *. c.max_chaos_delay))
          | _ -> None
        in
        children :=
          {
            pid;
            cjob = job;
            cfd = r;
            cdec = Wire.decoder ~tags:"RES" ~bare:"H" ();
            started = Unix.gettimeofday ();
            reply = None;
            cstats = None;
            bad = None;
            term_at = None;
            killed = false;
            timed_out = false;
            kill_at;
            chaos_killed = false;
          }
          :: !children
  in
  let fill () =
    if config.isolation = `Process then begin
      let continue = ref true in
      while !continue do
        if !draining || List.length !children >= config.jobs then
          continue := false
        else
          let now = Unix.gettimeofday () in
          match !retry_queue with
          | (due, job) :: rest when due <= now ->
              retry_queue := rest;
              spawn job
          | _ -> (
              match Queue.take_opt pending with
              | Some job -> spawn job
              | None -> continue := false)
      done
    end
  in
  let kill_pid pid signal =
    try Unix.kill pid signal with Unix.Unix_error _ -> ()
  in
  let rec waitpid_retry pid =
    match Unix.waitpid [] pid with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  in
  let parse_child ch =
    let again = ref true in
    while !again do
      again := false;
      if ch.reply = None && ch.bad = None then
        match Wire.decode ch.cdec with
        | Ok None -> ()
        | Ok (Some { Wire.tag = 'H'; _ }) -> again := true
        | Ok (Some { Wire.tag = 'S'; payload }) ->
            ch.cstats <- Some payload;
            again := true
        | Ok (Some { Wire.tag; payload }) -> ch.reply <- Some (tag, payload)
        | Error e -> ch.bad <- Some (Wire.error_to_string e)
    done
  in
  let reap ch =
    (try Unix.close ch.cfd with Unix.Unix_error _ -> ());
    let _, wstatus = waitpid_retry ch.pid in
    children := List.filter (fun c -> c != ch) !children;
    let job = ch.cjob in
    match ch.reply with
    | Some ('R', r) ->
        let stats_delta = Option.value ch.cstats ~default:"" in
        if stats_delta <> "" then ignore (Stats.absorb_string stats_delta);
        complete ~stats_delta job (status_of_result r) r
    | Some ('E', msg) -> complete job "error" ("ERROR: " ^ msg)
    | Some _ -> assert false
    | None ->
        if !draining then
          (* the drain killed nothing, but a child dying right now is
             abandoned like an interrupted cell: it stays journaled as
             accepted and reruns after restart *)
          job.state <- Queued
        else if ch.chaos_killed then begin
          (* the server's own chaos harness killed it: retry, charging
             no budget — injected faults must never quarantine *)
          job.state <- Queued;
          schedule_retry job
        end
        else begin
          let failure =
            if ch.timed_out then
              Supervisor.Unresponsive
                {
                  elapsed = Unix.gettimeofday () -. ch.started;
                  limit =
                    Option.value
                      (match job.deadline with
                      | Some _ as d -> d
                      | None -> config.default_deadline)
                      ~default:0.;
                  forced = ch.killed;
                }
            else
              match ch.bad with
              | Some msg -> Supervisor.Protocol msg
              | None -> (
                  match wstatus with
                  | Unix.WEXITED 0 -> Supervisor.Protocol "no reply before exit"
                  | Unix.WEXITED n -> Supervisor.Exited n
                  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Supervisor.Signaled s)
          in
          job.failures <- failure :: job.failures;
          let nfails = List.length job.failures in
          if nfails > config.retries then begin
            let q =
              {
                Supervisor.key = job.id;
                attempts = nfails;
                failures = List.rev job.failures;
              }
            in
            complete job "quarantined" (Supervisor.quarantine_to_string q)
          end
          else begin
            stats.retries <- stats.retries + 1;
            metric "server.retries";
            job.state <- Queued;
            schedule_retry job
          end
        end
  in
  let check_watchdog now =
    List.iter
      (fun ch ->
        if ch.reply = None then begin
          (match ch.kill_at with
          | Some t when (not ch.chaos_killed) && now >= t ->
              ch.chaos_killed <- true;
              chaos_fire "kill_child";
              kill_pid ch.pid Sys.sigkill
          | _ -> ());
          let limit =
            match ch.cjob.deadline with
            | Some _ as d -> d
            | None -> config.default_deadline
          in
          (match limit with
          | Some l when ch.term_at = None && now -. ch.started > l ->
              ch.timed_out <- true;
              ch.term_at <- Some now;
              kill_pid ch.pid Sys.sigterm;
              metric "server.kills.term"
          | _ -> ());
          match ch.term_at with
          | Some t when (not ch.killed) && now -. t > config.kill_grace ->
              ch.killed <- true;
              kill_pid ch.pid Sys.sigkill;
              metric "server.kills.kill"
          | _ -> ()
        end)
      !children
  in
  (* -------------------------- domain backend ------------------------- *)
  let worker () =
    let continue = ref true in
    while !continue do
      let job =
        Mutex.protect dmutex (fun () ->
            while Queue.is_empty pending && not !dstop do
              Condition.wait dcond dmutex
            done;
            if !dstop then None
            else begin
              incr drunning;
              Queue.take_opt pending
            end)
      in
      match job with
      | None -> continue := false
      | Some job ->
          if Trace.on () then
            Trace.emit (Trace.Job_start { id = job.id; attempt = 0 });
          if Metrics.on () then Metrics.incr "server.job_starts";
          let status, result, stats_delta =
            (* [Stats.scoped] merges the job's contribution into this
               domain's shard and hands back the delta for the journal
               — the same per-job persistence the 'S' frame gives the
               process backend. *)
            match Stats.scoped (fun () -> handler ~kind:job.kind ~payload:job.payload) with
            | r, delta -> (status_of_result r, r, delta)
            | exception exn -> ("error", "ERROR: " ^ Printexc.to_string exn, "")
          in
          Mutex.protect omutex (fun () ->
              dout := (job.id, status, result, stats_delta) :: !dout);
          Mutex.protect dmutex (fun () -> decr drunning);
          (* wake the select loop *)
          (try ignore (Unix.write pipe_w (Bytes.of_string "x") 0 1)
           with Unix.Unix_error _ -> ())
    done
  in
  let domains =
    match config.isolation with
    | `In_domain -> List.init config.jobs (fun _ -> Domain.spawn worker)
    | `Process -> []
  in
  let collect_domain_results () =
    let done_jobs =
      Mutex.protect omutex (fun () ->
          let r = !dout in
          dout := [];
          r)
    in
    List.iter
      (fun (id, status, result, stats_delta) ->
        match Hashtbl.find_opt jobs_tbl id with
        | Some job -> complete ~stats_delta job status result
        | None -> ())
      (List.rev done_jobs)
  in
  (* ------------------------------ frames ----------------------------- *)
  let health_json () =
    let running =
      match config.isolation with
      | `Process -> List.length !children
      | `In_domain -> Mutex.protect dmutex (fun () -> !drunning)
    in
    Obs.Json.Obj
      [
        ("status", Obs.Json.String (if !draining then "draining" else "ok"));
        ("queued", Obs.Json.Int (queued_count ()));
        ("running", Obs.Json.Int running);
        ("completed", Obs.Json.Int stats.completed);
      ]
  in
  let stats_json () =
    let running =
      match config.isolation with
      | `Process -> List.length !children
      | `In_domain -> Mutex.protect dmutex (fun () -> !drunning)
    in
    Obs.Json.Obj
      [
        ("accepted", Obs.Json.Int stats.accepted);
        ("rejected", Obs.Json.Int stats.rejected);
        ("completed", Obs.Json.Int stats.completed);
        ("errors", Obs.Json.Int stats.errors);
        ("quarantined", Obs.Json.Int stats.quarantined);
        ("dedup_cached", Obs.Json.Int stats.dedup_cached);
        ("dedup_inflight", Obs.Json.Int stats.dedup_inflight);
        ("retries", Obs.Json.Int stats.retries);
        ("recovered", Obs.Json.Int stats.recovered);
        ("conns", Obs.Json.Int stats.conns_opened);
        ("chaos_injected", Obs.Json.Int stats.chaos_injected);
        ("queued", Obs.Json.Int (queued_count ()));
        ("running", Obs.Json.Int running);
        ("draining", Obs.Json.Bool !draining);
      ]
  in
  let handle_submit conn payload =
    match String.index_opt payload '\n' with
    | None ->
        send conn (Wire.encode ~tag:'E' "malformed submit: no header line");
        conn.close_after_out <- true;
        conn.close_reason <- "protocol"
    | Some nl -> (
        let header = String.sub payload 0 nl in
        let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
        let kind, deadline_str =
          match String.index_opt header '\t' with
          | None -> (header, "")
          | Some t ->
              ( String.sub header 0 t,
                String.sub header (t + 1) (String.length header - t - 1) )
        in
        let deadline =
          match deadline_str with
          | "" -> Ok None
          | s -> (
              match int_of_string_opt s with
              | Some ms when ms > 0 -> Ok (Some (float_of_int ms /. 1000.))
              | _ -> Error s)
        in
        match deadline with
        | Error s ->
            send conn (Wire.encode ~tag:'E' ("malformed submit: deadline " ^ s));
            conn.close_after_out <- true;
            conn.close_reason <- "protocol"
        | Ok deadline when kind = "" ->
            ignore deadline;
            send conn (Wire.encode ~tag:'E' "malformed submit: empty kind");
            conn.close_after_out <- true;
            conn.close_reason <- "protocol"
        | Ok deadline -> (
            let id = job_id ~kind ~payload:body in
            let chaos_drop () =
              match config.chaos with
              | Some c when draw () < c.drop_conn ->
                  chaos_fire "drop_conn";
                  close_conn conn "drop_conn";
                  true
              | _ -> false
            in
            let submit_trace disposition =
              if Trace.on () then
                Trace.emit (Trace.Job_submit { id; kind; disposition })
            in
            match Hashtbl.find_opt jobs_tbl id with
            | Some ({ state = Finished { result; _ }; _ } as job) ->
                submit_trace "cached";
                stats.dedup_cached <- stats.dedup_cached + 1;
                metric "server.dedup.cached";
                if not (chaos_drop ()) then begin
                  send conn (Wire.encode ~tag:'A' id);
                  send_result conn job result
                end
            | Some job ->
                submit_trace "inflight";
                stats.dedup_inflight <- stats.dedup_inflight + 1;
                metric "server.dedup.inflight";
                if not (List.mem conn.cid job.waiters) then
                  job.waiters <- conn.cid :: job.waiters;
                if not (chaos_drop ()) then send conn (Wire.encode ~tag:'A' id)
            | None ->
                if !draining then begin
                  stats.rejected <- stats.rejected + 1;
                  metric "server.rejected";
                  if Trace.on () then
                    Trace.emit
                      (Trace.Job_reject
                         {
                           id;
                           queued = queued_count ();
                           limit = config.queue_limit;
                         });
                  send conn (Wire.encode ~tag:'X' (id ^ "\tdraining"))
                end
                else if queued_count () >= config.queue_limit then begin
                  stats.rejected <- stats.rejected + 1;
                  metric "server.rejected";
                  if Trace.on () then
                    Trace.emit
                      (Trace.Job_reject
                         {
                           id;
                           queued = queued_count ();
                           limit = config.queue_limit;
                         });
                  send conn
                    (Wire.encode ~tag:'X'
                       (Printf.sprintf "%s\toverloaded: %d jobs queued (limit %d)"
                          id (queued_count ()) config.queue_limit))
                end
                else begin
                  let job =
                    {
                      id;
                      kind;
                      payload = body;
                      deadline;
                      state = Queued;
                      waiters = [ conn.cid ];
                      failures = [];
                      attempts = 0;
                    }
                  in
                  Hashtbl.replace jobs_tbl id job;
                  journal_accept job;
                  enqueue_job job;
                  submit_trace "new";
                  stats.accepted <- stats.accepted + 1;
                  metric "server.accepted";
                  if chaos_drop () then () else send conn (Wire.encode ~tag:'A' id)
                end))
  in
  let process_conn_frames conn =
    let continue = ref true in
    while !continue && not conn.closed do
      match Wire.decode conn.dec with
      | Ok None -> continue := false
      | Ok (Some { Wire.tag = 'S'; payload }) -> handle_submit conn payload
      | Ok (Some { Wire.tag = 'P'; _ }) ->
          send conn (Wire.encode ~tag:'H' (Obs.Json.to_string (health_json ())))
      | Ok (Some { Wire.tag = 'T'; _ }) ->
          send conn (Wire.encode ~tag:'U' (Obs.Json.to_string (stats_json ())))
      | Ok (Some { Wire.tag = 'Q'; _ }) ->
          (* depth probe: the fleet's rebalancer polls this on every
             endpoint, so it is a fixed tab-separated line — no JSON
             parse on the hot path *)
          let running =
            match config.isolation with
            | `Process -> List.length !children
            | `In_domain -> Mutex.protect dmutex (fun () -> !drunning)
          in
          send conn
            (Wire.encode ~tag:'D'
               (Printf.sprintf "%d\t%d\t%d\t%d" (queued_count ()) running
                  stats.completed
                  (if !draining then 1 else 0)))
      | Ok (Some { Wire.tag; _ }) ->
          send conn
            (Wire.encode ~tag:'E' (Printf.sprintf "unexpected request tag %C" tag));
          conn.close_after_out <- true;
          conn.close_reason <- "protocol";
          continue := false
      | Error e ->
          send conn (Wire.encode ~tag:'E' (Wire.error_to_string e));
          conn.close_after_out <- true;
          conn.close_reason <- "protocol";
          continue := false
    done
  in
  (* ------------------------------ socket ----------------------------- *)
  let listen_fd =
    let domain = Unix.domain_of_sockaddr sockaddr in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (try
       (match unix_path with
       | Some path when Sys.file_exists path -> Unix.unlink path
       | _ -> ());
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd sockaddr;
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       (match e with
       | Unix.Unix_error (err, _, _) ->
           failwith
             (Printf.sprintf "Server: cannot listen on %s: %s" socket
                (Unix.error_message err))
       | e -> raise e));
    fd
  in
  let accepting = ref true in
  let stop_accepting () =
    if !accepting then begin
      accepting := false;
      try Unix.close listen_fd with Unix.Unix_error _ -> ()
    end
  in
  (* ---------------------------- recovery ----------------------------- *)
  (match (journal, resume) with
  | Some path, true ->
      let records = Sweep.Journal.load path in
      let done_tbl = Hashtbl.create 64 in
      List.iter
        (fun (key, value) ->
          if String.length key > 2 && String.sub key 0 2 = "d:" then
            Hashtbl.replace done_tbl (String.sub key 2 (String.length key - 2))
              value)
        records;
      List.iter
        (fun (key, value) ->
          if String.length key > 2 && String.sub key 0 2 = "j:" then begin
            let id = String.sub key 2 (String.length key - 2) in
            if not (Hashtbl.mem jobs_tbl id) then begin
              (* value = kind TAB deadline_ms TAB payload *)
              match String.index_opt value '\t' with
              | None -> ()  (* foreign record: skipped *)
              | Some t1 -> (
                  let kind = String.sub value 0 t1 in
                  match String.index_from_opt value (t1 + 1) '\t' with
                  | None -> ()
                  | Some t2 ->
                      let deadline_str = String.sub value (t1 + 1) (t2 - t1 - 1) in
                      let body =
                        String.sub value (t2 + 1) (String.length value - t2 - 1)
                      in
                      let deadline =
                        match int_of_string_opt deadline_str with
                        | Some ms when ms > 0 -> Some (float_of_int ms /. 1000.)
                        | _ -> None
                      in
                      let job =
                        {
                          id;
                          kind;
                          payload = body;
                          deadline;
                          state = Queued;
                          waiters = [];
                          failures = [];
                          attempts = 0;
                        }
                      in
                      Hashtbl.replace jobs_tbl id job;
                      stats.recovered <- stats.recovered + 1;
                      metric "server.recovered";
                      (match Hashtbl.find_opt done_tbl id with
                      | Some value ->
                          (* strip the stats delta (absorbed into this
                             process's registry) so clients are served
                             the bare result *)
                          let result = Sweep.replay_value value in
                          job.state <-
                            Finished
                              { status = status_of_result result; result }
                      | None -> enqueue_job job))
            end
          end)
        records
  | _ -> ());
  (* ----------------------------- signals ----------------------------- *)
  let save_signal s h = try Some (Sys.signal s h) with Invalid_argument _ | Sys_error _ -> None in
  let prev_term =
    save_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set drain_req true))
  in
  let prev_int =
    save_signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set drain_req true))
  in
  let prev_pipe = save_signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    Option.iter (fun b -> Sys.set_signal Sys.sigterm b) prev_term;
    Option.iter (fun b -> Sys.set_signal Sys.sigint b) prev_int;
    Option.iter (fun b -> Sys.set_signal Sys.sigpipe b) prev_pipe
  in
  if Trace.on () then
    Trace.emit
      (Trace.Server_start
         { socket; jobs = config.jobs; queue_limit = config.queue_limit });
  (* ---------------------------- main loop ---------------------------- *)
  let chunk = Bytes.create 4096 in
  let running_count () =
    match config.isolation with
    | `Process -> List.length !children
    | `In_domain -> Mutex.protect dmutex (fun () -> !drunning)
  in
  let flush_conn conn =
    flush_deferred conn (Unix.gettimeofday ());
    if Buffer.length conn.out > 0 && not conn.closed then begin
      let bytes = Buffer.to_bytes conn.out in
      match Unix.write conn.fd bytes 0 (Bytes.length bytes) with
      | n ->
          if n >= Bytes.length bytes then Buffer.clear conn.out
          else begin
            let rest = Buffer.sub conn.out n (Buffer.length conn.out - n) in
            Buffer.clear conn.out;
            Buffer.add_string conn.out rest
          end
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_conn conn "error"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
    end;
    if
      (not conn.closed) && conn.close_after_out
      && Buffer.length conn.out = 0
      && conn.deferred = []
    then close_conn conn conn.close_reason
  in
  let handle_conn_read conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> close_conn conn "eof"
    | n ->
        Wire.feed conn.dec chunk 0 n;
        process_conn_frames conn
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn conn "error"
  in
  let handle_child_read ch =
    match Unix.read ch.cfd chunk 0 (Bytes.length chunk) with
    | 0 -> reap ch
    | n ->
        Wire.feed ch.cdec chunk 0 n;
        parse_child ch
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let accept_ready () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
        let cid = !next_cid in
        incr next_cid;
        let conn =
          {
            cid;
            fd;
            dec = Wire.decoder ~max_payload:config.max_frame ~tags:"SPTQ" ();
            out = Buffer.create 256;
            deferred = [];
            close_after_out = false;
            close_reason = "eof";
            closed = false;
          }
        in
        Hashtbl.replace conns cid conn;
        stats.conns_opened <- stats.conns_opened + 1;
        metric "server.conns";
        if Trace.on () then Trace.emit (Trace.Conn_open { conn = cid })
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
  in
  let select_timeout now =
    let t = ref 0.25 in
    let consider due = t := Float.max 0. (Float.min !t (due -. now)) in
    List.iter
      (fun ch ->
        if ch.reply = None then begin
          Option.iter consider ch.kill_at;
          let limit =
            match ch.cjob.deadline with
            | Some _ as d -> d
            | None -> config.default_deadline
          in
          (match (limit, ch.term_at) with
          | Some l, None -> consider (ch.started +. l)
          | _ -> ());
          match ch.term_at with
          | Some at when not ch.killed -> consider (at +. config.kill_grace)
          | _ -> ()
        end)
      !children;
    (match !retry_queue with (due, _) :: _ -> consider due | [] -> ());
    Hashtbl.iter
      (fun _ conn ->
        match conn.deferred with (due, _) :: _ -> consider due | [] -> ())
      conns;
    !t
  in
  let start_drain () =
    if not !draining then begin
      draining := true;
      stop_accepting ();
      (* retry-waiting jobs are abandoned like queued ones: journaled as
         accepted, rerun on restart *)
      List.iter (fun (_, job) -> job.state <- Queued) !retry_queue;
      retry_queue := [];
      if Trace.on () then
        Trace.emit
          (Trace.Server_drain
             { queued = queued_count (); running = running_count () });
      metric "server.drains";
      match config.isolation with
      | `In_domain ->
          Mutex.protect dmutex (fun () -> dstop := true);
          Condition.broadcast dcond
      | `Process -> ()
    end
  in
  let cleanup () =
    restore_signals ();
    stop_accepting ();
    (* never leak children, also on the exception path *)
    List.iter (fun ch -> kill_pid ch.pid Sys.sigkill) !children;
    List.iter
      (fun ch ->
        (try Unix.close ch.cfd with Unix.Unix_error _ -> ());
        ignore (waitpid_retry ch.pid))
      !children;
    children := [];
    (match config.isolation with
    | `In_domain ->
        Mutex.protect dmutex (fun () -> dstop := true);
        Condition.broadcast dcond;
        List.iter Domain.join domains;
        (try Unix.close pipe_r with Unix.Unix_error _ -> ());
        (try Unix.close pipe_w with Unix.Unix_error _ -> ())
    | `Process -> ());
    Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) conns;
    Hashtbl.reset conns;
    Option.iter Sweep.Journal.close jnl;
    match unix_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      on_ready ();
      let finished = ref false in
      while not !finished do
        if (Atomic.get drain_req || should_stop ()) && not !draining then
          start_drain ();
        fill ();
        let now = Unix.gettimeofday () in
        check_watchdog now;
        (* collect results that arrived via the self-pipe *)
        if config.isolation = `In_domain then collect_domain_results ();
        (* flush what can be flushed without waiting for select *)
        Hashtbl.iter (fun _ conn -> flush_deferred conn now) conns;
        let rfds =
          (if !accepting then [ listen_fd ] else [])
          @ (if config.isolation = `In_domain then [ pipe_r ] else [])
          @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
          @ List.map (fun ch -> ch.cfd) !children
        in
        let wfds =
          Hashtbl.fold
            (fun _ c acc ->
              if Buffer.length c.out > 0 || (c.close_after_out && c.deferred = [])
              then c.fd :: acc
              else acc)
            conns []
        in
        (match Unix.select rfds wfds [] (select_timeout now) with
        | ready_r, ready_w, _ ->
            List.iter
              (fun fd ->
                if !accepting && fd = listen_fd then accept_ready ()
                else if config.isolation = `In_domain && fd = pipe_r then begin
                  (match Unix.read pipe_r chunk 0 (Bytes.length chunk) with
                  | _ -> ()
                  | exception Unix.Unix_error _ -> ());
                  collect_domain_results ()
                end
                else
                  match List.find_opt (fun ch -> ch.cfd = fd) !children with
                  | Some ch -> handle_child_read ch
                  | None -> (
                      match
                        Hashtbl.fold
                          (fun _ c acc -> if c.fd = fd then Some c else acc)
                          conns None
                      with
                      | Some conn -> handle_conn_read conn
                      | None -> ()))
              ready_r;
            List.iter
              (fun fd ->
                match
                  Hashtbl.fold
                    (fun _ c acc -> if c.fd = fd then Some c else acc)
                    conns None
                with
                | Some conn -> flush_conn conn
                | None -> ())
              ready_w
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        if !draining then begin
          (match config.isolation with
          | `In_domain ->
              (* workers have been told to stop; wait for in-flight *)
              if running_count () = 0 then begin
                collect_domain_results ();
                finished := true
              end
          | `Process -> if !children = [] then finished := true)
        end
      done;
      (* a short best-effort flush so waiters of jobs that finished
         during the drain see their results before the close *)
      let flush_deadline = Unix.gettimeofday () +. 0.5 in
      let pending_out () =
        Hashtbl.fold
          (fun _ c acc -> acc || Buffer.length c.out > 0 || c.deferred <> [])
          conns false
      in
      while pending_out () && Unix.gettimeofday () < flush_deadline do
        let now = Unix.gettimeofday () in
        Hashtbl.iter (fun _ conn -> flush_deferred conn now) conns;
        let wfds =
          Hashtbl.fold
            (fun _ c acc -> if Buffer.length c.out > 0 then c.fd :: acc else acc)
            conns []
        in
        match Unix.select [] wfds [] 0.05 with
        | _, ready_w, _ ->
            List.iter
              (fun fd ->
                match
                  Hashtbl.fold
                    (fun _ c acc -> if c.fd = fd then Some c else acc)
                    conns None
                with
                | Some conn -> flush_conn conn
                | None -> ())
              ready_w
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
