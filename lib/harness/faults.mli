(** Deterministic fault-injection combinators over algorithms and
    oracles.

    Each wrapper turns a well-behaved participant into a specific kind
    of misbehaving one, so the E7 fault matrix can probe that every
    (fault class x game) pair yields exactly the expected typed outcome.
    All wrappers are deterministic (counters, not clocks) and
    per-instance (fresh state per [instantiate]), so probe-and-replay
    adversaries still see a deterministic algorithm.

    That same per-instance discipline is what makes the combinators safe
    under a parallel {!Sweep}: no wrapper touches global mutable state,
    so two pool workers injecting faults concurrently cannot perturb
    each other's cells.  In particular {!chaos_oracle} derives every
    corruption purely from [(handle, seed)] — a stateless seeded
    function, not a shared RNG stream — so fault-matrix results are
    identical at any [--jobs] count. *)

val wrong_color : every:int -> Models.Algorithm.t -> Models.Algorithm.t
(** Every [every]-th color call answers [(c + 1) mod palette] instead of
    the underlying [c]: wrong but in-palette, so only the game itself
    (a monochromatic edge) can catch it. *)

val out_of_palette :
  ?color:int -> at_step:int -> Models.Algorithm.t -> Models.Algorithm.t
(** Color call number [at_step] answers [color] (default: [palette],
    the smallest out-of-range value; try [max_int] or a negative). *)

val raise_at :
  ?message:string -> step:int -> Models.Algorithm.t -> Models.Algorithm.t
(** Color call number [step] raises [Failure message]. *)

val spin : steps:int -> Models.Algorithm.t -> Models.Algorithm.t
(** From color call number [steps] on, loop forever — polling
    {!Guard.tick} each iteration, so a guard's work budget or deadline
    stops it within bounded steps.  Unguarded, it really does not
    terminate: only run it under {!Guard.algorithm}. *)

val amnesia : Models.Algorithm.t -> Models.Algorithm.t
(** Re-instantiates the underlying algorithm on every color call,
    dropping the model's unbounded global memory between steps. *)

val chaos_oracle : seed:int -> Models.Oracle.t -> Models.Oracle.t
(** Corrupt an oracle: queried nodes whose handle [h] satisfies
    [(h + seed) mod 2 = 0] report the next part id instead of their own.
    Deterministic in [seed]; [parts] and [radius] are preserved. *)

val algorithm_faults :
  (string * (Models.Algorithm.t -> Models.Algorithm.t)) list
(** The canonical fault classes of the E7 matrix, labelled:
    [wrong-color] ([~every:2] — every call would be a mere palette
    rotation), [out-of-palette] ([~at_step:1]), [raise] ([~step:1]),
    [spin] ([~steps:1]), [amnesia]. *)
