(** Guarded execution: budgets, deadlines, and exception containment for
    both sides of a game.

    The lower-bound theorems quantify over {e all} algorithms, so the
    engine must stay sound against pathological ones: an algorithm (or
    adversary) that raises, loops, or answers garbage must degrade into
    one typed {!Misbehavior.t} — never hang the process, abort a sweep,
    or get silently misclassified as a defeat.

    A guard is created once per game and carries three mutable meters:

    {ul
    {- a {e color-call budget} — how many times the algorithm instance
       may be asked for a color;}
    {- a {e work budget} — cooperative fuel, consumed by {!tick}; the
       {!Faults.spin} nonterminator and any instrumented loop poll it,
       making "nontermination" a deterministic, bounded event;}
    {- a {e wall-clock deadline}, measured from {!create}, polled at
       every color call and every 256 ticks.}}

    Exception policy everywhere: [Stack_overflow], [Out_of_memory] and
    [Sys.Break] are {e fatal} — re-raised, never recorded as misbehavior
    (a crashing runtime is not a defeated algorithm, and Ctrl-C must
    reach the sweep checkpointer).  Everything else becomes a
    {!Misbehavior.Raised} with its backtrace.

    {b Blocking thunks — a known limitation.}  The deadline is {e
    polled}: it is only checked at color calls and every 256th {!tick}.
    A guarded thunk that blocks without ever ticking — a non-cooperative
    [while true do () done], a blocking syscall, a foreign call — never
    reaches a poll point, so its deadline silently never fires and the
    sweep stalls.  In-process containment cannot close this gap: there
    is no safe way to asynchronously interrupt an OCaml domain.  Run the
    sweep under process isolation ([Sweep.run ~isolation:`Process], or
    [--isolate proc]) to cover it: the {!Supervisor}'s wall-clock
    watchdog kills the whole worker process from outside and records a
    typed {!Misbehavior.Unresponsive} certificate, which is exactly the
    case this guard cannot catch.

    Domain safety: a guard's meters are mutated only by the domain
    running its guarded calls, and the {e ambient} guard that {!tick}
    consults is domain-local — parallel {!Sweep} workers each meter
    their own innermost guard and can never charge (or fault) a game
    running on another domain.  Backtrace recording is per-domain in
    OCaml 5 and {!create} enables it on the domain that will run the
    game, since guards are created inside the cell that plays it. *)

type limits = {
  max_color_calls : int option;  (** color calls allowed per guard *)
  max_work : int option;  (** {!tick} fuel allowed per guard *)
  deadline : float option;  (** wall-clock seconds since {!create} *)
}

val no_limits : limits

val default_limits : limits
(** No call cap, no deadline, a generous 50M-tick work budget (so an
    unconfigured guard still stops cooperative spinners). *)

type t

exception Misbehaved of Misbehavior.t
(** Raised out of a guarded color call after the misbehavior has been
    recorded on the guard; executors contain it like any algorithm
    exception, and the engine reads the typed form back via {!fault}. *)

val create : ?limits:limits -> unit -> t
(** Also enables [Printexc.record_backtrace] (a global runtime setting)
    so contained exceptions carry their backtraces; merely linking the
    library has no such side effect. *)

val fault : t -> Misbehavior.t option
(** First misbehavior recorded by this guard, if any. *)

val color_calls : t -> int
val work : t -> int

val is_fatal : exn -> bool
(** [Stack_overflow | Out_of_memory | Sys.Break]. *)

val tick : ?cost:int -> unit -> unit
(** Cooperative poll point: consumes [cost] (default 1) work units from
    the innermost active guard {e of the current domain} and checks its
    budgets.  A no-op when no guarded call is in progress on this
    domain, so instrumented algorithms run unchanged outside the
    harness. *)

val charge : t -> unit
(** Account for one color call that was answered from the memo cache
    instead of run live: bumps the call meter, checks the call budget
    and deadline, and emits the [Color_call] trace event — exactly what
    a guarded call would have done around the skipped instance, so
    memo-on guard meters and budget faults stay byte-identical to
    memo-off.  Raises {!Misbehaved} like a live call would (fail-fast
    when already faulted, [Budget_exhausted] on overflow). *)

val algorithm : t -> Models.Algorithm.t -> Models.Algorithm.t
(** Wrap an algorithm so every [instantiate] and every color call runs
    under the guard: budgets and deadline are checked per call, the
    guard is installed for {!tick} during the call, non-fatal exceptions
    (including from [instantiate]) are recorded and re-raised as
    {!Misbehaved}, and once faulted every later call fails fast with the
    same certificate. *)

val capture : t -> (unit -> 'a) -> ('a, Misbehavior.t) result
(** Run a whole adversary [play] (or any engine step) under containment:
    [Error] carries the typed misbehavior for non-fatal exceptions
    (including {!Misbehaved} escaping an unguarded path); a
    {!Models.Run_stats.Dishonest_transcript} escape maps to
    [Misbehavior.Dishonest_transcript] rather than a generic [Raised];
    fatal exceptions re-raise. *)
