(** The one audited length-prefixed framing codec, shared by every
    harness component that speaks over a byte stream: the
    {!Supervisor}'s parent↔child pipes and the {!Server}/{!Client}
    socket protocol.

    A {e frame} is a tag byte followed by a 4-byte big-endian payload
    length and the payload itself:

    {v  +-----+----+----+----+----+----------------+
        | tag |  length (int32, BE) |  payload ...  |
        +-----+----+----+----+----+----------------+ v}

    Some protocols also use {e bare} tags — a single byte with no
    length and no payload (the supervisor's ['H'] heartbeat) — so a
    decoder is created with two tag alphabets: [tags] (framed) and
    [bare] (single-byte).

    {2 Robustness contract}

    Decoding is {e total}: any byte stream — truncated mid-frame,
    bit-flipped, or adversarial — produces either frames or a typed
    {!error}, never an exception.  A declared payload length is checked
    against [max_payload] {e before} any allocation proportional to it,
    so a hostile 2 GB length prefix costs nothing (the [wire-codec]
    fuzz target pins both properties).  A decoder that has reported an
    error is {e poisoned}: every later {!decode} returns the same
    error, because after garbage there is no way to re-synchronize a
    length-prefixed stream. *)

type error =
  | Unknown_tag of char
      (** the next byte is in neither tag alphabet — the stream is
          garbage or desynchronized *)
  | Negative_length of { tag : char }
      (** the length field's sign bit is set *)
  | Oversized of { tag : char; declared : int; limit : int }
      (** the declared payload length exceeds the decoder's
          [max_payload]; nothing was allocated *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type frame = { tag : char; payload : string }
(** A decoded frame.  Bare tags decode with [payload = ""]. *)

val default_max_payload : int
(** [16 MiB] — the default allocation cap per frame. *)

val encode : tag:char -> string -> bytes
(** [encode ~tag payload] is the framed wire image, [5 + length payload]
    bytes.  @raise Invalid_argument if the payload exceeds the int32
    range (it could not be decoded on any peer). *)

val encode_bare : char -> bytes
(** The one-byte wire image of a bare tag. *)

val crc32 : string -> int
(** IEEE 802.3 CRC-32 (the zlib/PNG polynomial) of the whole string,
    as a non-negative int in [0, 0xFFFFFFFF].  Pure OCaml,
    table-driven; this is the integrity primitive behind the journal's
    v2 per-record checksums. *)

val crc32_update : int -> string -> int
(** [crc32_update crc s] extends a running {!crc32} with [s]:
    [crc32_update (crc32 a) b = crc32 (a ^ b)]. *)

type decoder
(** An incremental decoder over an internal buffer: {!feed} it raw
    bytes as they arrive, then {!decode} frames out of it.  Not
    domain-safe; use one decoder per stream. *)

val decoder :
  ?max_payload:int -> ?bare:string -> tags:string -> unit -> decoder
(** [decoder ~tags ()] accepts framed tags from the [tags] string and
    bare tags from [bare] (default none).  [max_payload] caps declared
    payload lengths (default {!default_max_payload}).
    @raise Invalid_argument if the alphabets overlap or [max_payload]
    is negative. *)

val feed : decoder -> bytes -> int -> int -> unit
(** [feed d buf off len] appends [len] bytes to the decoder's buffer.
    Feeding a poisoned decoder is a no-op (the error is sticky). *)

val feed_string : decoder -> string -> unit

val decode : decoder -> (frame option, error) result
(** [Ok (Some f)]: one complete frame, consumed from the buffer.
    [Ok None]: no complete frame yet — feed more bytes.
    [Error e]: typed decode failure; the decoder is poisoned and every
    subsequent call returns the same error. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed as frames. *)
