(** Process-isolated supervised execution: the OS-boundary containment
    layer under [Sweep.run ~isolation:`Process].

    Every in-process containment layer has a blind spot: {!Guard}
    deadlines are only polled at ticks (a blocking, non-ticking thunk
    evades them — see guard.mli), and nothing in-process survives an
    OOM-kill or a stray [SIGKILL] aimed at a worker.  The supervisor
    closes both gaps by forking each task into a {e child process} that
    speaks a tiny length-prefixed protocol over a pipe — {!Wire}
    framing with framed ['R']/['E'] replies and the bare ['H']
    heartbeat, the same audited codec the {!Server} speaks on its
    socket:

    {v
      parent (single domain: fork/select/waitpid loop)
        ├─ child[pid] ── pipe ──▶  'H'            heartbeat (SIGALRM-driven)
        │                          'S' len bytes  stats snapshot (optional,
        │                                         just before a success 'R')
        │                          'R' len bytes  result payload
        │                          'E' len bytes  contained exception text
        └─ child[pid] ...          (then Unix._exit — no buffer flushing)
    v}

    The parent is {e single-domain by construction}: in OCaml 5, forking
    from a [Domain.spawn]ed worker is unsafe (the child inherits stopped
    GC machinery), so process isolation replaces {!Pool} rather than
    layering on it — [jobs] children run concurrently under one
    [Unix.select] loop.

    {2 Failure handling}

    A child that returns sends ['R'] and its result is delivered as
    {!Done}.  A child whose thunk raises catches the exception {e
    inside the child} and sends ['E'] — delivered as {!Failed}, never
    retried (the raise is deterministic; retrying would break
    byte-equivalence with the in-domain path).  Everything else is an
    {e abnormal} death — nonzero exit, a signal, a watchdog kill, or
    protocol garbage — and goes through the retry machinery: the task is
    rescheduled with seeded exponential backoff + jitter (deterministic
    given [config.seed], the task key, and the attempt number) until the
    retry budget is spent, at which point it degrades to a typed
    {!Quarantined} record instead of stalling the run.

    The wall-clock watchdog (per-attempt [config.timeout]) escalates
    [SIGTERM] → [config.kill_grace] → [SIGKILL]; a task killed this way
    records a {!Misbehavior.Unresponsive} certificate — exactly the
    case the in-process guard cannot catch.  Heartbeats are traced and
    metered for observability but play no role in kill decisions (the
    watchdog is pure wall-clock, so a heartbeating-but-stuck cell still
    dies).

    {2 Observability}

    Child lifecycle is emitted through {!Obs.Trace} ([Child_spawn],
    [Child_heartbeat], [Child_kill], [Child_exit] with exit status and
    CPU rusage from [Unix.times], [Cell_retry], [Cell_quarantined]) and
    {!Obs.Metrics} ([supervisor.spawns], [supervisor.heartbeats],
    [supervisor.kills.term], [supervisor.kills.kill],
    [supervisor.retries], [supervisor.quarantines]).  Unlike the sweep
    metrics, [supervisor.heartbeats] is timing-dependent and therefore
    {e not} jobs-count-invariant; the others are invariant on a run with
    no kills.  Children detach the trace sink first thing after the fork
    ({!Obs.Trace.detach_in_child}) and reset the inherited {!Obs.Stats}
    shards ({!Obs.Stats.reset}), so game-level events from inside a
    cell are not traced under process isolation — the cost of the
    stronger containment — while stats survive the boundary: a child
    drains its own registry into a framed ['S'] snapshot that the
    parent re-absorbs (see [on_stats] below). *)

type config = {
  retries : int;
      (** extra attempts after the first (so [retries = 2] means at most
          3 spawns per task); [0] disables retrying.  Default [2]. *)
  timeout : float option;
      (** per-{e attempt} wall-clock limit in seconds; [None] (default)
          disables the watchdog. *)
  kill_grace : float;
      (** seconds between the watchdog's [SIGTERM] and its [SIGKILL]
          escalation.  Default [0.5]. *)
  heartbeat_interval : int;
      (** seconds between child heartbeat bytes; [0] disables them.
          Default [1]. *)
  backoff_base : float;  (** first retry delay, seconds.  Default [0.05]. *)
  backoff_max : float;  (** retry delay cap, seconds.  Default [2.0]. *)
  seed : int;
      (** seed for the backoff jitter stream — the same seed, task key
          and attempt number always produce the same delay.  Default
          [0x5EED]. *)
}

val default_config : config

val validate_config : config -> unit
(** @raise Invalid_argument naming the offending field if [retries < 0],
    [timeout <= 0], [kill_grace <= 0], [heartbeat_interval < 0],
    [backoff_base < 0], or [backoff_max < backoff_base]. *)

type failure =
  | Exited of int  (** abnormal child exit with this nonzero code *)
  | Signaled of int
      (** child killed by this signal (OCaml signal number — e.g. an
          external [kill -9], an OOM kill) *)
  | Unresponsive of { elapsed : float; limit : float; forced : bool }
      (** the watchdog killed the attempt after [elapsed] seconds
          (per-attempt limit [limit]); [forced] means [SIGTERM] was
          ignored and the [SIGKILL] escalation fired *)
  | Protocol of string
      (** the child closed its pipe without a complete reply frame (or
          wrote garbage) yet exited 0 *)

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

val to_misbehavior : failure -> Misbehavior.t option
(** [Unresponsive] maps to {!Misbehavior.Unresponsive} — the typed
    certificate for the guard's blocking-thunk blind spot; other
    failures carry no per-participant certificate (a [SIGKILL] from
    outside says nothing about the algorithm). *)

type quarantine = {
  key : string;
  attempts : int;  (** total attempts made, all failed *)
  failures : failure list;  (** one per attempt, in attempt order *)
}

val quarantine_to_string : quarantine -> string
(** ["QUARANTINED after N attempts: <failure>; <failure>; ..."] — the
    string a sweep records (and checkpoints) for a quarantined cell. *)

type outcome =
  | Done of string  (** the child's thunk returned this string *)
  | Failed of string
      (** the child's thunk raised; payload is [Printexc.to_string] of
          the exception, caught {e in the child} (deterministic raises
          are results, not retryable crashes) *)
  | Quarantined of quarantine  (** retry budget exhausted *)

val run :
  ?config:config ->
  ?should_stop:(unit -> bool) ->
  jobs:int ->
  tasks:int ->
  key:(int -> string) ->
  ?inline:(int -> string option) ->
  work:(int -> string) ->
  ?on_stats:(task:int -> string -> unit) ->
  ?complete:(int -> outcome -> unit) ->
  consume:(int -> outcome -> unit) ->
  unit ->
  unit
(** [run ~jobs ~tasks ~key ~work ~consume ()] executes tasks
    [0 .. tasks-1], at most [jobs] child processes at a time.

    {ul
    {- [key i] names task [i] for traces, backoff seeding and
       quarantine records;}
    {- [inline i] (parent-side, called once when task [i] is first
       dispatched) may short-circuit the fork by returning the result
       directly — this is how a resumed sweep replays checkpointed
       cells without paying a fork;}
    {- [work i] runs {e in the forked child} and its string return is
       the task's payload;}
    {- [on_stats ~task payload] receives the child's encoded
       {!Obs.Stats} drain (the ['S'] frame sent just before a
       successful ['R']), exactly once per {!Done} task — a child that
       dies after sending ['S'] is retried and only the surviving
       attempt's snapshot is delivered.  Children {!Obs.Stats.reset}
       after the fork, so the payload is the cell's own contribution.
       Default: absorb into this process's registry with
       {!Obs.Stats.absorb_string}, which keeps drained totals
       byte-identical with the in-domain path;}
    {- [complete i outcome] fires in {e completion} order, as each task
       settles — the hook for prompt checkpointing;}
    {- [consume i outcome] fires in {e strict index order} (buffered
       like {!Pool.run}'s), so output bytes never depend on [jobs] or
       on retry timing.}}

    [should_stop] is polled once per supervision-loop iteration; when it
    first returns [true] the supervisor stops dispatching, sends every
    live child [SIGTERM] (escalating to [SIGKILL] after
    [config.kill_grace]), reaps them, delivers any replies that did
    complete, and returns — abandoned tasks are neither retried nor
    quarantined, so an interrupted sweep resumes them cleanly.

    Always reaps its children, also on exception.

    @raise Invalid_argument on [jobs < 1], [tasks < 0], or an invalid
    [config] (see {!validate_config}). *)
