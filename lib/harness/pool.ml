let default_cap = 8

let default_jobs ?(cap = default_cap) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

(* The sequential path is exactly the pre-pool control flow: work and
   consume alternate on the calling domain, and an exception out of
   [work] propagates immediately — no spawn, no mutex, no buffering. *)
let sequential ~tasks ~work ~consume =
  for i = 0 to tasks - 1 do
    consume i (work i)
  done

let parallel ~jobs ~tasks ~work ~consume =
  let workers = min jobs tasks in
  let mutex = Mutex.create () in
  let progress = Condition.create () in
  (* All shared state below is guarded by [mutex]. *)
  let next = ref 0 in
  let results = Array.make tasks None in
  let crash = ref None in
  let live = ref workers in
  let claim () =
    Mutex.protect mutex (fun () ->
        if !crash <> None || !next >= tasks then None
        else begin
          let i = !next in
          incr next;
          Some i
        end)
  in
  let finished i v =
    Mutex.protect mutex (fun () ->
        results.(i) <- Some v;
        Condition.broadcast progress)
  in
  let abort exn bt =
    Mutex.protect mutex (fun () ->
        if !crash = None then crash := Some (exn, bt);
        Condition.broadcast progress)
  in
  let worker index () =
    if Trace.on () then Trace.emit (Trace.Worker_start { index });
    let claimed = ref 0 in
    let rec loop () =
      match claim () with
      | None -> ()
      | Some i -> (
          incr claimed;
          match work i with
          | v ->
              finished i v;
              loop ()
          | exception exn ->
              (* Fatal for the whole pool: publish the first crash so no
                 further cell is claimed; in-flight cells on other
                 workers still drain. *)
              abort exn (Printexc.get_raw_backtrace ()))
    in
    loop ();
    if Trace.on () then Trace.emit (Trace.Worker_stop { index; tasks = !claimed });
    Mutex.protect mutex (fun () ->
        decr live;
        Condition.broadcast progress)
  in
  let domains = List.init workers (fun i -> Domain.spawn (worker i)) in
  (* The calling domain is the consumer: results are handed to [consume]
     strictly in index order, as soon as they become contiguous.  After a
     crash the contiguous prefix still flows; the first gap stops it. *)
  let consumed = ref 0 in
  let drain () =
    let next_action () =
      Mutex.protect mutex (fun () ->
          let rec wait () =
            if !consumed >= tasks then `Done
            else
              match results.(!consumed) with
              | Some v ->
                  results.(!consumed) <- None;
                  `Consume v
              | None ->
                  if !live = 0 then `Stopped
                  else begin
                    Condition.wait progress mutex;
                    wait ()
                  end
          in
          wait ())
    in
    let rec go () =
      match next_action () with
      | `Consume v ->
          consume !consumed v;
          incr consumed;
          go ()
      | `Done | `Stopped -> ()
    in
    go ()
  in
  let consumer_crash =
    match drain () with
    | () -> None
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        (* Stop the workers from claiming more cells, then re-raise the
           consumer's own failure below (it outranks any later worker
           crash: it happened first from the caller's point of view). *)
        abort exn bt;
        Some (exn, bt)
  in
  List.iter Domain.join domains;
  match (consumer_crash, !crash) with
  | Some (exn, bt), _ -> Printexc.raise_with_backtrace exn bt
  | None, Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None, None -> ()

let run ~jobs ~tasks ~work ~consume =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if tasks = 0 then ()
  else if jobs <= 1 || tasks = 1 then sequential ~tasks ~work ~consume
  else parallel ~jobs ~tasks ~work ~consume
