(** Seeded, deterministic exponential backoff with jitter — the one
    retry schedule shared by the {!Supervisor}'s crashed-cell retries
    and the {!Client}'s resubmission loop.

    The delay for [(seed, key, attempt)] is a pure function of those
    three values (a SplitMix64 finalizer over their hash), so a retry
    schedule replays exactly: the same seed, task key and attempt
    number always produce the same delay.  Idempotent retries plus a
    deterministic schedule is what lets a chaos run be diffed against a
    calm one. *)

type config = {
  base : float;  (** first retry delay, seconds *)
  max : float;  (** cap on the exponential term, seconds *)
  seed : int;  (** jitter stream seed *)
}

val default : config
(** [{ base = 0.05; max = 2.0; seed = 0x5EED }]. *)

val validate : config -> unit
(** @raise Invalid_argument if [base < 0] or [max < base]. *)

val delay : config -> key:string -> attempt:int -> float
(** Delay before [attempt] (1-based) of the task named [key]:
    [base * 2^(attempt-1)] capped at [max], scaled by a deterministic
    jitter factor in [\[1, 2)]. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer behind the jitter — exposed for other
    seeded-hash users. *)
