(** Client side of the {!Server} protocol: content-derived job ids,
    pipelined submission, and seeded-backoff retries over every failure
    the server (or its [--chaos] harness) can inject.

    The retry loop is safe {e because} submission is idempotent: a job's
    id is a digest of its content ({!job_id}), so resubmitting after a
    dropped connection, a truncated frame, or a typed ['X'] rejection
    can never run a job twice — the server answers from its dedup table
    ([cached]/[inflight]) and the bytes of a campaign's results are
    independent of how many times the client had to ask. *)

val job_id : kind:string -> payload:string -> string
(** The content-derived id the server will assign: [Digest] (as hex) of
    [kind], a NUL byte, and [payload].  Computable offline — equal
    content, equal id, which is the whole idempotency story. *)

type campaign = {
  results : string list;
      (** one result per submitted spec, {e in spec order} — byte-equal
          to what a local serverless run of the same specs prints *)
  resubmits : int;
      (** submit frames sent beyond the first per unique job *)
  rejections : int;  (** typed ['X'] answers absorbed (backpressure) *)
  reconnects : int;  (** connections re-established mid-campaign *)
}

val run_campaign :
  ?backoff:Backoff.config ->
  ?window:int ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?recv_timeout:float ->
  socket:string ->
  (string * string) list ->
  campaign
(** [run_campaign ~socket specs] submits every [(kind, payload)] spec
    and blocks until all results are in.  Up to [window] (default 16)
    jobs are kept in flight (pipelined on one connection).  A rejection
    backs the job off on the seeded [backoff] schedule (default
    {!Backoff.default} — deterministic delays, so two runs of the same
    campaign against the same server behave the same); a connection
    failure of any shape (EOF, reset, frame decode error, [recv_timeout]
    seconds of silence — default 30) reconnects and resubmits every
    unresolved job.  [deadline] (seconds) is forwarded with each submit
    as the per-attempt job deadline.

    @raise Failure if one job is rejected or one connect attempt fails
    [max_attempts] (default 10_000) times in a row — the bound that
    turns a dead or wedged server into an error instead of a hang. *)

val health :
  ?recv_timeout:float ->
  socket:string ->
  unit ->
  (string, [ `Unreachable of string ]) result
(** One-shot ['P'] ping; [Ok json] is the server's health JSON.
    [Error (`Unreachable reason)] is every way the socket can fail to
    answer — missing, refused, reset, EOF, or [recv_timeout] seconds of
    silence — a state callers branch on (the fleet marks the endpoint
    down; [submit.exe --health] exits 2 naming the socket).
    @raise Failure only on protocol corruption: a reachable server that
    answers with anything but ['H']. *)

val stats :
  ?recv_timeout:float ->
  socket:string ->
  unit ->
  (string, [ `Unreachable of string ]) result
(** One-shot ['T'] request; [Ok json] is the server's stats JSON.
    Errors as {!health}. *)

exception Conn_lost of string
(** One connection attempt or established connection failed — EOF,
    reset, refused, decode error, receive timeout.  The campaign loop
    absorbs these (reconnect + resubmit); {!Endpoint} surfaces them to
    the fleet's failover logic. *)

(** A connected endpoint with its own frame decoder — the unit the
    {!Fleet} router multiplexes with [Unix.select].  All functions
    raise {!Conn_lost} on connection failure; none raise [Unix_error]. *)
module Endpoint : sig
  type t

  val connect : ?recv_timeout:float -> string -> t
  (** Connect to a socket spec (Unix path or [tcp:PORT]).  The receive
      timeout (default 30 s) bounds how long a wedged server can stall
      one {!pump}. *)

  val spec : t -> string
  val fd : t -> Unix.file_descr
  (** For [Unix.select] readiness polling — do not read or close it
      directly. *)

  val send : t -> tag:char -> string -> unit
  (** Send one framed request ({!Wire.encode}). *)

  val pump : t -> Wire.frame list
  (** One [Unix.read] (call only when [fd] selected readable, so it
      does not block) followed by every frame that now decodes.  [[]]
      means a frame is still incomplete — select again. *)

  val close : t -> unit
end
