(** Client side of the {!Server} protocol: content-derived job ids,
    pipelined submission, and seeded-backoff retries over every failure
    the server (or its [--chaos] harness) can inject.

    The retry loop is safe {e because} submission is idempotent: a job's
    id is a digest of its content ({!job_id}), so resubmitting after a
    dropped connection, a truncated frame, or a typed ['X'] rejection
    can never run a job twice — the server answers from its dedup table
    ([cached]/[inflight]) and the bytes of a campaign's results are
    independent of how many times the client had to ask. *)

val job_id : kind:string -> payload:string -> string
(** The content-derived id the server will assign: [Digest] (as hex) of
    [kind], a NUL byte, and [payload].  Computable offline — equal
    content, equal id, which is the whole idempotency story. *)

type campaign = {
  results : string list;
      (** one result per submitted spec, {e in spec order} — byte-equal
          to what a local serverless run of the same specs prints *)
  resubmits : int;
      (** submit frames sent beyond the first per unique job *)
  rejections : int;  (** typed ['X'] answers absorbed (backpressure) *)
  reconnects : int;  (** connections re-established mid-campaign *)
}

val run_campaign :
  ?backoff:Backoff.config ->
  ?window:int ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?recv_timeout:float ->
  socket:string ->
  (string * string) list ->
  campaign
(** [run_campaign ~socket specs] submits every [(kind, payload)] spec
    and blocks until all results are in.  Up to [window] (default 16)
    jobs are kept in flight (pipelined on one connection).  A rejection
    backs the job off on the seeded [backoff] schedule (default
    {!Backoff.default} — deterministic delays, so two runs of the same
    campaign against the same server behave the same); a connection
    failure of any shape (EOF, reset, frame decode error, [recv_timeout]
    seconds of silence — default 30) reconnects and resubmits every
    unresolved job.  [deadline] (seconds) is forwarded with each submit
    as the per-attempt job deadline.

    @raise Failure if one job is rejected or one connect attempt fails
    [max_attempts] (default 10_000) times in a row — the bound that
    turns a dead or wedged server into an error instead of a hang. *)

val health : ?recv_timeout:float -> socket:string -> unit -> string
(** One-shot ['P'] ping; returns the server's health JSON.
    @raise Failure if the server cannot be reached or answers with
    anything but ['H']. *)

val stats : ?recv_timeout:float -> socket:string -> unit -> string
(** One-shot ['T'] request; returns the server's stats JSON.
    @raise Failure like {!health}. *)
