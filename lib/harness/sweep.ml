type cell = { key : string; run : unit -> string }

exception Interrupted

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    (match s.[!i] with
    | '\\' when !i + 1 < len ->
        incr i;
        Buffer.add_char b
          (match s.[!i] with 'n' -> '\n' | 't' -> '\t' | c -> c)
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let load path =
  let completed = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            match String.index_opt line '\t' with
            | None -> ()  (* torn or foreign line: ignore, the cell reruns *)
            | Some cut ->
                Hashtbl.replace completed
                  (unescape (String.sub line 0 cut))
                  (unescape (String.sub line (cut + 1) (String.length line - cut - 1)))
          done
        with End_of_file -> ())
  end;
  completed

let run ?(resume = false) ?checkpoint ~ppf cells =
  let keys = Hashtbl.create (List.length cells * 2 + 1) in
  List.iter
    (fun c ->
      if Hashtbl.mem keys c.key then
        invalid_arg ("Sweep.run: duplicate cell key " ^ c.key);
      Hashtbl.replace keys c.key ())
    cells;
  let completed =
    match checkpoint with
    | Some path when resume -> load path
    | Some _ | None -> Hashtbl.create 0
  in
  let out =
    Option.map
      (fun path ->
        let flags =
          Open_wronly :: Open_creat :: (if resume then [ Open_append ] else [ Open_trunc ])
        in
        open_out_gen flags 0o644 path)
      checkpoint
  in
  (* Trap SIGINT so a killed sweep flushes its last line and closes the
     checkpoint cleanly; completed cells survive for --resume. *)
  let previous_sigint =
    try Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> raise Interrupted)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun b -> Sys.set_signal Sys.sigint b) previous_sigint;
      Option.iter close_out_noerr out)
    (fun () ->
      List.iter
        (fun c ->
          let result =
            match Hashtbl.find_opt completed c.key with
            | Some r -> r  (* replayed verbatim: resumed output is byte-identical *)
            | None ->
                let r =
                  match c.run () with
                  | r -> r
                  | exception (Interrupted as e) -> raise e
                  | exception e when Guard.is_fatal e -> raise e
                  | exception exn ->
                      (* A crashed cell is a recorded result, not an
                         aborted sweep. *)
                      "ERROR: " ^ Printexc.to_string exn
                in
                Option.iter
                  (fun oc ->
                    output_string oc (escape c.key ^ "\t" ^ escape r ^ "\n");
                    flush oc)
                  out;
                r
          in
          Format.fprintf ppf "%s@." result)
        cells;
      Format.pp_print_flush ppf ())

let int_axis s =
  List.filter_map
    (fun part ->
      let part = String.trim part in
      if part = "" then None
      else
        match int_of_string_opt part with
        | Some i -> Some i
        | None -> invalid_arg ("Sweep.int_axis: not an integer: " ^ part))
    (String.split_on_char ',' s)

let string_axis s =
  List.filter_map
    (fun part ->
      let part = String.trim part in
      if part = "" then None else Some part)
    (String.split_on_char ',' s)
