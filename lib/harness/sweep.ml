type cell = { key : string; run : unit -> string }

exception Interrupted

module Journal = struct
  (* Journal format version.  The header is a tab-less line, which a
     pre-versioning loader already skipped as foreign (so v1 files replay
     under v0 code), and a file with no header is v0 (so old checkpoints
     replay here).  Bump [version] — and keep parsing the old
     layouts — when the record format changes.

     v2 adds a per-record integrity trailer: each record is
     [escape(key) TAB escape(value) TAB @crc:len] where [crc] is the
     8-hex-digit {!Wire.crc32} of everything before the last tab and
     [len] its byte length.  Escaping removes raw tabs from key and
     value, so the trailer is unambiguously the suffix after the last
     tab.  Records whose trailer is missing, malformed, or fails the
     length/CRC check are skipped with a typed, traced warning — a
     resume then reruns exactly the affected cells instead of replaying
     silently corrupted bytes.  The loader keys parsing off the most
     recent header line, so v0/v1 files (and v0/v1 prefixes of resumed
     files) replay unchanged. *)
  let version = 2
  let header_prefix = "#sweep-checkpoint v"
  let header = Printf.sprintf "%s%d" header_prefix version

  let parse_header line =
    if String.length line >= String.length header_prefix
       && String.sub line 0 (String.length header_prefix) = header_prefix
    then
      let rest =
        String.sub line
          (String.length header_prefix)
          (String.length line - String.length header_prefix)
      in
      match int_of_string_opt (String.trim rest) with
      | Some v -> Some v
      | None -> invalid_arg ("Sweep: malformed checkpoint header: " ^ line)
    else None

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let unescape s =
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      (match s.[!i] with
      | '\\' when !i + 1 < len ->
          incr i;
          Buffer.add_char b
            (match s.[!i] with 'n' -> '\n' | 't' -> '\t' | c -> c)
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b

  let trailer_of body =
    Printf.sprintf "@%08x:%d" (Wire.crc32 body) (String.length body)

  (* "@crc:len" with crc exactly 8 hex digits and len decimal. *)
  let parse_trailer s =
    let n = String.length s in
    if n < 11 || s.[0] <> '@' || s.[9] <> ':' then None
    else
      let hex = String.sub s 1 8 in
      let is_hex c =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
      in
      if not (String.for_all is_hex hex) then None
      else
        match
          ( int_of_string_opt ("0x" ^ hex),
            int_of_string_opt (String.sub s 10 (n - 10)) )
        with
        | Some crc, Some len when len >= 0 -> Some (crc, len)
        | _ -> None

  type corruption = { line : int; reason : string }

  (* The one scanner behind [load] and [fsck]: walks newline-delimited
     records, tracks the version context set by the most recent header
     line, verifies v2 trailers, and reports each good record /
     corrupt record through the callbacks.  Returns the last header
     version seen (0 for a headerless v0 file). *)
  let scan path ~record ~corrupt =
    let ver = ref 0 in
    if Sys.file_exists path then begin
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> In_channel.input_all ic)
      in
      let n = String.length contents in
      let lineno = ref 0 in
      let rec go start =
        if start < n then
          match String.index_from_opt contents start '\n' with
          | None -> ()  (* torn final record (killed mid-write): dropped *)
          | Some stop ->
              incr lineno;
              let line = String.sub contents start (stop - start) in
              (match parse_header line with
              | Some v when v > version ->
                  invalid_arg
                    (Printf.sprintf
                       "Sweep: checkpoint %s is format v%d, newer than this \
                        binary (v%d)"
                       path v version)
              | Some v -> ver := v
              | None -> ());
              (match String.index_opt line '\t' with
              | None -> ()  (* headerless = v0; other foreign lines: dropped *)
              | Some _ when !ver >= 2 -> (
                  (* escaping strips raw tabs from key and value, so the
                     trailer is exactly the suffix after the last tab *)
                  let cut = String.rindex line '\t' in
                  let body = String.sub line 0 cut in
                  let trailer =
                    String.sub line (cut + 1) (String.length line - cut - 1)
                  in
                  match parse_trailer trailer with
                  | None ->
                      corrupt
                        { line = !lineno; reason = "malformed record trailer" }
                  | Some (crc, len) ->
                      if len <> String.length body then
                        corrupt
                          {
                            line = !lineno;
                            reason =
                              Printf.sprintf
                                "length mismatch: trailer says %d bytes, \
                                 record has %d"
                                len (String.length body);
                          }
                      else
                        let actual = Wire.crc32 body in
                        if crc <> actual then
                          corrupt
                            {
                              line = !lineno;
                              reason =
                                Printf.sprintf
                                  "crc mismatch: trailer %08x, computed %08x"
                                  crc actual;
                            }
                        else
                          (match String.index_opt body '\t' with
                          | None ->
                              corrupt
                                {
                                  line = !lineno;
                                  reason = "missing key/value separator";
                                }
                          | Some cut ->
                              record
                                (unescape (String.sub body 0 cut))
                                (unescape
                                   (String.sub body (cut + 1)
                                      (String.length body - cut - 1)))))
              | Some cut ->
                  record
                    (unescape (String.sub line 0 cut))
                    (unescape
                       (String.sub line (cut + 1) (String.length line - cut - 1))));
              go (stop + 1)
      in
      go 0
    end;
    !ver

  let load path =
    let records = ref [] in
    let corrupt { line; reason } =
      if Trace.on () then
        Trace.emit (Trace.Journal_corrupt { path; line; reason });
      if Metrics.on () then Metrics.incr "sweep.journal_corrupt_records";
      Printf.eprintf "journal: %s:%d: corrupt record skipped (%s)\n%!" path
        line reason
    in
    ignore
      (scan path ~record:(fun k v -> records := (k, v) :: !records) ~corrupt);
    List.rev !records

  type fsck_report = {
    version : int;
    records : int;
    corrupt : corruption list;
  }

  let fsck path =
    let n = ref 0 in
    let cs = ref [] in
    let version =
      scan path
        ~record:(fun _ _ -> incr n)
        ~corrupt:(fun c -> cs := c :: !cs)
    in
    { version; records = !n; corrupt = List.rev !cs }

  let load_table path =
    let completed = Hashtbl.create 64 in
    (* replace: if a torn record was later terminated and the key
       re-recorded, the later record wins *)
    List.iter (fun (k, v) -> Hashtbl.replace completed k v) (load path);
    completed

  let ends_without_newline path =
    match open_in_bin path with
    | exception Sys_error _ -> false
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            len > 0
            && begin
                 seek_in ic (len - 1);
                 input_char ic <> '\n'
               end)

  (* Whole records only: each append happens under the mutex and is
     flushed before release, so concurrent writers interleave at record
     granularity and a kill can tear at most the final record — the same
     torn-record semantics [load] already repairs. *)
  type t = { oc : out_channel; mutex : Mutex.t }

  let first_line path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> In_channel.input_line ic)

  let open_out ?(resume = false) path =
    let existing =
      resume && Sys.file_exists path
      && (try (Unix.stat path).Unix.st_size > 0 with Unix.Unix_error _ -> false)
    in
    if not existing then begin
      (* Fresh journal: the header is written to a tmp file and renamed
         into place, so a kill during creation leaves either no journal
         or a complete headered one — never a half-written header that
         a later resume would misparse as a v0 record stream. *)
      let tmp = path ^ ".tmp" in
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc header;
          output_char oc '\n';
          flush oc);
      Sys.rename tmp path
    end;
    let torn = existing && ends_without_newline path in
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
    (* A kill mid-write can leave a torn, newline-less final record;
       terminate it so the records appended below stay line-delimited.
       [load] already skipped the torn record (under v2 the repaired
       line additionally fails its CRC), so its key reruns and its
       fresh record supersedes the torn one on any later load. *)
    if torn then output_char oc '\n';
    (* Resuming into a pre-v2 file keeps its existing records as-is and
       appends a v2 header line to switch the version context, so the
       records appended below carry — and are verified against — CRC
       trailers while the old prefix still replays under v0/v1 rules. *)
    if existing then begin
      (match first_line path with
      | Some l when parse_header l = Some version -> ()
      | _ ->
          output_string oc header;
          output_char oc '\n')
    end;
    flush oc;
    { oc; mutex = Mutex.create () }

  let append t ~key value =
    Mutex.protect t.mutex (fun () ->
        let body = escape key ^ "\t" ^ escape value in
        let record = body ^ "\t" ^ trailer_of body ^ "\n" in
        output_string t.oc record;
        flush t.oc;
        if Trace.on () then
          Trace.emit (Trace.Checkpoint_flush { key; bytes = String.length record });
        if Metrics.on () then Metrics.incr "sweep.checkpoint_flushes")

  let close t = close_out_noerr t.oc
end

let load = Journal.load_table

(* A checkpoint record value is [output] or [output NUL stats-delta]:
   the cell's printed result, optionally followed by the {!Stats}
   snapshot the cell contributed ({!Stats.scoped} in-domain, the
   supervisor's ['S'] frame under process isolation).  NUL never occurs
   in cell output (results are printable text) or in the compact-JSON
   delta, and pre-stats journals simply have no NUL — both layouts
   parse under both vintages. *)
let join_delta out delta = if delta = "" then out else out ^ "\x00" ^ delta

let split_delta v =
  match String.index_opt v '\x00' with
  | None -> (v, "")
  | Some i -> (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))

(* Replaying a checkpointed cell restores its stats contribution, so a
   killed-and-resumed sweep drains the same totals as an uninterrupted
   one.  A malformed delta (hand-edited journal) degrades to replaying
   the output without stats rather than failing the resume. *)
let replay_value v =
  let out, delta = split_delta v in
  if delta <> "" && Stats.on () then ignore (Stats.absorb_string delta);
  out

type isolation = [ `In_domain | `Process ]

let run ?(resume = false) ?checkpoint ?(jobs = 1) ?(isolation = `In_domain)
    ?supervisor ~ppf cells =
  if jobs < 1 then invalid_arg "Sweep.run: jobs must be >= 1";
  let keys = Hashtbl.create (List.length cells * 2 + 1) in
  List.iter
    (fun c ->
      if Hashtbl.mem keys c.key then
        invalid_arg ("Sweep.run: duplicate cell key " ^ c.key);
      Hashtbl.replace keys c.key ())
    cells;
  let completed =
    match checkpoint with
    | Some path when resume -> load path
    | Some _ | None -> Hashtbl.create 0
  in
  let out = Option.map (fun path -> Journal.open_out ~resume path) checkpoint in
  let cells_arr = Array.of_list cells in
  let parallel = jobs > 1 && Array.length cells_arr > 1 in
  let append_ckpt key r =
    Option.iter (fun j -> Journal.append j ~key r) out
  in
  let sigint = Atomic.make false in
  (* Trap SIGINT.  Sequentially (jobs <= 1) it raises [Sys.Break] — the
     one interrupt every containment layer (Guard.guarded_call,
     Guard.capture, the executors) treats as fatal and re-raises — so
     Ctrl-C landing inside algorithm or adversary code can never be
     swallowed into a fake cell result and flushed to the checkpoint.
     Under a pool, OCaml delivers signal handlers on one domain only, so
     raising there could land inside the pool's own bookkeeping instead
     of a cell; the handler just records the request, every worker stops
     before claiming its next cell, in-flight cells drain, and the
     boundary below still surfaces {!Interrupted} after the checkpoint
     is flushed and closed.  Process isolation records the flag even at
     [jobs = 1]: raising mid-supervision would unwind the parent loop
     and leak children, so the supervisor polls it via [should_stop]
     and drains cleanly. *)
  let previous_sigint =
    let handler =
      if parallel || isolation = `Process then
        Sys.Signal_handle (fun _ -> Atomic.set sigint true)
      else Sys.Signal_handle (fun _ -> raise Sys.Break)
    in
    try Some (Sys.signal Sys.sigint handler)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let work i =
    let c = cells_arr.(i) in
    match Hashtbl.find_opt completed c.key with
    | Some r ->
        (* replayed verbatim: resumed output is byte-identical, and the
           checkpointed stats delta is re-absorbed *)
        if Trace.on () then begin
          Trace.emit (Trace.Cell_start { key = c.key });
          Trace.emit (Trace.Cell_finish { key = c.key; status = "replayed" })
        end;
        if Metrics.on () then Metrics.incr "sweep.cells_replayed";
        replay_value r
    | None ->
        if Atomic.get sigint then raise Sys.Break;
        if Trace.on () then Trace.emit (Trace.Cell_start { key = c.key });
        if Metrics.on () then Metrics.incr "sweep.cells_run";
        let status = ref "ok" in
        let r, delta =
          (* [Stats.scoped] captures exactly this cell's contribution
             for the checkpoint; an erroring cell's scope is discarded,
             matching the process-isolated path where a crashed child
             sends no stats. *)
          match Stats.scoped c.run with
          | rd -> rd
          | exception (Interrupted as e) -> raise e
          | exception e when Guard.is_fatal e -> raise e
          | exception exn ->
              (* A crashed cell is a recorded result, not an
                 aborted sweep. *)
              status := "error";
              if Metrics.on () then Metrics.incr "sweep.cell_errors";
              ("ERROR: " ^ Printexc.to_string exn, "")
        in
        append_ckpt c.key (join_delta r delta);
        if Trace.on () then
          Trace.emit (Trace.Cell_finish { key = c.key; status = !status });
        r
  in
  let consume _i result = Format.fprintf ppf "%s@." result in
  let run_cells () =
    match isolation with
    | `In_domain ->
        Pool.run ~jobs ~tasks:(Array.length cells_arr) ~work ~consume
    | `Process ->
        let n = Array.length cells_arr in
        let replayed = Array.make (max n 1) false in
        let inline i =
          let c = cells_arr.(i) in
          match Hashtbl.find_opt completed c.key with
          | Some r ->
              (* replayed verbatim, parent-side: no fork, no re-run *)
              replayed.(i) <- true;
              if Trace.on () then begin
                Trace.emit (Trace.Cell_start { key = c.key });
                Trace.emit
                  (Trace.Cell_finish { key = c.key; status = "replayed" })
              end;
              if Metrics.on () then Metrics.incr "sweep.cells_replayed";
              Some (replay_value r)
          | None ->
              if Trace.on () then Trace.emit (Trace.Cell_start { key = c.key });
              if Metrics.on () then Metrics.incr "sweep.cells_run";
              None
        in
        (* The child returns exactly the string the in-domain path would
           have produced, and the ERROR mapping below uses the identical
           format — well-behaved and deterministically-raising cells
           print the same bytes under both isolation modes. *)
        let result_of = function
          | Supervisor.Done r -> r
          | Supervisor.Failed msg -> "ERROR: " ^ msg
          | Supervisor.Quarantined q -> Supervisor.quarantine_to_string q
        in
        (* Child stats arrive as the supervisor's ['S'] frame; stash
           the delta so [complete] can checkpoint it next to the cell's
           result, and absorb it so this process's drain matches the
           in-domain path byte for byte. *)
        let stats_of = Array.make (max n 1) "" in
        let on_stats ~task payload =
          stats_of.(task) <- payload;
          ignore (Stats.absorb_string payload)
        in
        let complete i outcome =
          if not replayed.(i) then begin
            let c = cells_arr.(i) in
            let status =
              match outcome with
              | Supervisor.Done _ -> "ok"
              | Supervisor.Failed _ ->
                  if Metrics.on () then Metrics.incr "sweep.cell_errors";
                  "error"
              | Supervisor.Quarantined _ ->
                  if Metrics.on () then Metrics.incr "sweep.cells_quarantined";
                  "quarantined"
            in
            append_ckpt c.key (join_delta (result_of outcome) stats_of.(i));
            if Trace.on () then
              Trace.emit (Trace.Cell_finish { key = c.key; status })
          end
        in
        Supervisor.run ?config:supervisor
          ~should_stop:(fun () -> Atomic.get sigint)
          ~jobs ~tasks:n
          ~key:(fun i -> cells_arr.(i).key)
          ~inline
          ~work:(fun i -> (cells_arr.(i)).run ())
          ~on_stats
          ~complete
          ~consume:(fun i o -> consume i (result_of o))
          ()
  in
  match
    Fun.protect
      ~finally:(fun () ->
        Option.iter (fun b -> Sys.set_signal Sys.sigint b) previous_sigint;
        Option.iter Journal.close out)
      (fun () ->
        run_cells ();
        Format.pp_print_flush ppf ();
        if Atomic.get sigint then raise Sys.Break)
  with
  | () -> ()
  | exception Sys.Break -> raise Interrupted

let flag_suffix = function None -> "" | Some flag -> " (flag " ^ flag ^ ")"

let int_axis ?flag s =
  let axis =
    List.filter_map
      (fun part ->
        let part = String.trim part in
        if part = "" then None
        else
          match int_of_string_opt part with
          | Some i -> Some i
          | None ->
              invalid_arg
                ("Sweep.int_axis: not an integer: " ^ part ^ flag_suffix flag))
      (String.split_on_char ',' s)
  in
  if axis = [] then
    invalid_arg ("Sweep.int_axis: empty axis" ^ flag_suffix flag)
  else axis

let string_axis ?flag s =
  let axis =
    List.filter_map
      (fun part ->
        let part = String.trim part in
        if part = "" then None else Some part)
      (String.split_on_char ',' s)
  in
  if axis = [] then
    invalid_arg ("Sweep.string_axis: empty axis" ^ flag_suffix flag)
  else axis
