type t =
  | Raised of { message : string; backtrace : string }
  | Out_of_palette of { color : int }
  | Budget_exhausted of { used : int; budget : int }
  | Deadline_exceeded of { elapsed : float; deadline : float }
  | Dishonest_transcript of { message : string }
  | Unresponsive of { elapsed : float; limit : float }

let label = function
  | Raised _ -> "raised"
  | Out_of_palette _ -> "out-of-palette"
  | Budget_exhausted _ -> "budget-exhausted"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Dishonest_transcript _ -> "dishonest-transcript"
  | Unresponsive _ -> "unresponsive"

let pp ppf = function
  | Raised { message; backtrace } ->
      Format.fprintf ppf "raised: %s%s" message
        (if backtrace = "" then "" else " [backtrace recorded]")
  | Out_of_palette { color } -> Format.fprintf ppf "out-of-palette color %d" color
  | Budget_exhausted { used; budget } ->
      Format.fprintf ppf "budget exhausted (%d > %d)" used budget
  | Deadline_exceeded { elapsed; deadline } ->
      Format.fprintf ppf "deadline exceeded (%.3fs > %.3fs)" elapsed deadline
  | Dishonest_transcript { message } ->
      Format.fprintf ppf "dishonest transcript: %s" message
  | Unresponsive { elapsed; limit } ->
      Format.fprintf ppf "unresponsive: killed by supervisor after %.3fs (limit %.3fs)"
        elapsed limit

let to_string t = Format.asprintf "%a" pp t
