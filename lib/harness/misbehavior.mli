(** Typed certificates of participant misbehavior.

    A game verdict must never confuse "the adversary forced a
    monochromatic edge" with "the algorithm crashed / looped / cheated
    its palette".  Every way a participant can misbehave is one
    constructor here, so executors and the guarded engine can attribute
    it precisely ({!Guard}) and tests can assert on it exactly
    (the E7 fault matrix). *)

type t =
  | Raised of { message : string; backtrace : string }
      (** the participant raised a non-fatal exception ([Stack_overflow],
          [Out_of_memory] and [Sys.Break] are re-raised, never recorded) *)
  | Out_of_palette of { color : int }
      (** the algorithm answered a color outside [{0 .. palette-1}] *)
  | Budget_exhausted of { used : int; budget : int }
      (** the step / color-call budget of the {!Guard} ran out — the
          deterministic rendition of nontermination *)
  | Deadline_exceeded of { elapsed : float; deadline : float }
      (** the wall-clock deadline of the {!Guard} passed *)
  | Dishonest_transcript of { message : string }
      (** the adversary's transcript failed an honesty audit (e.g.
          {!Online_local.Virtual_grid.validate} under [~paranoid], or a
          node presented twice) *)
  | Unresponsive of { elapsed : float; limit : float }
      (** the cell stopped responding entirely — it blocked without
          ticking, so the in-process {!Guard} deadline poll never fired,
          and the {!Supervisor} watchdog had to kill the worker process
          after [elapsed] seconds (per-attempt limit [limit]).  Only
          process isolation can produce this certificate; see the
          "Blocking thunks" note in [guard.mli]. *)

val label : t -> string
(** Short stable tag ("raised", "out-of-palette", ...) for tables. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
