(** The resilient job server: a long-running front door that accepts
    game/sweep/fuzz jobs over a socket and multiplexes them across the
    existing pool/supervisor machinery.

    {2 Protocol}

    Clients speak {!Wire} framing over a Unix-domain socket (or
    loopback TCP with a ["tcp:PORT"] socket spec).  Client→server
    frames:

    {ul
    {- ['S'] submit — payload [kind "\t" deadline_ms "\n" job-payload]
       ([deadline_ms] empty for the server default);}
    {- ['P'] health ping — empty payload;}
    {- ['T'] stats — empty payload;}
    {- ['Q'] depth probe — empty payload; the cheap polling frame the
       {!Fleet} rebalancer uses.}}

    Server→client frames:

    {ul
    {- ['A'] accepted — payload is the job id;}
    {- ['R'] result — payload [id "\t" result];}
    {- ['X'] rejected — payload [id "\t" reason] (the typed
       [REJECTED (Overloaded)] backpressure answer, also sent while
       draining);}
    {- ['H'] health / ['U'] stats — one canonical JSON object;}
    {- ['D'] depth — [queued "\t" running "\t" completed "\t" draining]
       with [draining] 0 or 1, fixed-layout so probes need no JSON
       parse;}
    {- ['E'] protocol error — a {!Wire.error} rendering; the connection
       closes after it.}}

    {2 Idempotency and admission}

    A job's id is {e content-derived} — [Digest] of its kind and
    payload ({!Client.job_id}) — so submission is idempotent: a
    duplicate submit of a finished job replays the recorded result
    ([cached]), a duplicate of a queued/running job attaches the
    connection as a second waiter ([inflight]), and only a genuinely
    new job consumes queue capacity.  That is what makes client-side
    retries safe under every failure the chaos harness injects.

    The admission queue is {e bounded} ([queue_limit]): a submit that
    would grow it past the limit is answered with ['X'] and costs no
    memory — backpressure, never unbounded growth.

    {2 Execution}

    Jobs run under the configured [isolation]: [`Process] forks one
    supervised child per job (watchdog SIGTERM→SIGKILL on the per-job
    deadline, crash retries with the same seeded {!Backoff} schedule as
    the {!Supervisor}, typed ["QUARANTINED ..."] degradation), while
    [`In_domain] runs jobs on a pool of worker domains (no fork, no
    watchdog — the {!Guard}'s territory).  A handler that returns
    produces its string verbatim; a handler that raises produces
    ["ERROR: <exn>"] in both modes, so a campaign's bytes never depend
    on the isolation mode or [jobs] count.

    {2 Drain and recovery}

    With a [?journal], every accepted job is recorded before it runs
    and every finished job's result is recorded after ({!Sweep.Journal}
    format).  On SIGTERM (or SIGINT) the server {e drains}: it stops
    accepting, finishes in-flight jobs, answers their waiters, and
    exits — queued jobs stay journaled.  Restarting with [~resume:true]
    replays the journal: finished jobs become cached results (served
    without re-running), accepted-but-unfinished jobs re-enter the
    queue in acceptance order.  An accepted job is therefore never
    lost, and a client that resubmits after the restart gets
    byte-identical results. *)

type chaos = {
  chaos_seed : int;  (** seed for the injection schedule *)
  drop_conn : float;
      (** probability a processed submit drops the connection instead
          of answering (the client must retry; admission already
          happened, so the retry dedups) *)
  partial_frame : float;
      (** probability a reply frame is written in two halves with a
          delay between them (slow-loris from the server side) *)
  truncate_frame : float;
      (** probability a reply frame is cut mid-frame and the
          connection closed (the client sees EOF inside a frame) *)
  kill_child : float;
      (** [`Process] mode: probability a job's child is SIGKILLed at a
          random point of its run (charged no retry, like an
          interrupt, so chaos cannot quarantine a healthy job) *)
  corrupt_journal : float;
      (** probability each journal append is followed by simulated disk
          damage to the last record — a seeded bit-flip, or a
          truncation repaired to stay line-delimited.  The damaged
          record fails its v2 CRC on the next load and is skipped with
          the typed warning; the affected job reruns after restart.
          No-op without a [?journal]. *)
  max_chaos_delay : float;
      (** upper bound, seconds, on injected delays and kill timing *)
}

val default_chaos : seed:int -> chaos
(** Moderate rates: drop 10%, partial 20%, truncate 10%, kill 25%,
    corrupt-journal 10%, delays up to 50 ms. *)

type config = {
  jobs : int;  (** max jobs executing concurrently *)
  isolation : [ `In_domain | `Process ];
  queue_limit : int;
      (** max jobs {e queued} (admitted, not yet running); submits
          beyond it are rejected *)
  retries : int;
      (** [`Process]: extra attempts after an abnormal child death
          before the job degrades to ["QUARANTINED ..."] *)
  kill_grace : float;  (** watchdog SIGTERM → SIGKILL gap, seconds *)
  default_deadline : float option;
      (** per-attempt wall-clock limit for jobs that do not carry
          their own; [None] disables the watchdog *)
  backoff : Backoff.config;  (** crash-retry schedule *)
  max_frame : int;  (** decoder payload cap per frame, bytes *)
  chaos : chaos option;  (** fault injection; [None] in production *)
}

val default_config : config
(** [jobs = 2], [`Process] isolation, [queue_limit = 64], [retries = 2],
    [kill_grace = 0.5], no default deadline, {!Backoff.default},
    {!Wire.default_max_payload}, no chaos. *)

val validate_config : config -> unit
(** @raise Invalid_argument naming the offending field. *)

val run :
  ?config:config ->
  ?journal:string ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?on_ready:(unit -> unit) ->
  socket:string ->
  handler:(kind:string -> payload:string -> string) ->
  unit ->
  unit
(** [run ~socket ~handler ()] listens on [socket] — a Unix-domain
    socket path, or ["tcp:PORT"] for loopback TCP — and serves until
    drained by SIGTERM/SIGINT (both handlers are installed for the
    duration and restored after) or until [should_stop] first returns
    [true].  [handler ~kind ~payload] computes a job's result; it must
    be deterministic in its arguments — that determinism is what the
    whole retry/dedup/replay design rests on.  [on_ready] fires once
    the socket is accepting.

    A normal return means the server drained cleanly: in-flight jobs
    finished and were journaled, queued jobs remain journaled for a
    [~resume:true] restart.

    @raise Invalid_argument on an invalid config (a [kind] containing a
    tab or newline byte is rejected per-request with an ['E'] frame, not
    here).
    @raise Failure if the socket cannot be bound or listened on. *)
