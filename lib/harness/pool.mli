(** A work-distributing domain pool with ordered result delivery.

    [run] fans [tasks] independent jobs out over [jobs] worker domains
    ([Domain.spawn], no external dependencies) and hands each result to
    a consumer callback {e on the calling domain, strictly in task-index
    order} — a completion buffer holds out-of-order results until their
    turn.  This is the scheduling core of {!Sweep.run}'s [?jobs]
    parameter, and is exactly the fan-out shape of a sweep: many
    independent guarded games whose outputs must stream back
    deterministically.

    Scheduling is dynamic: workers pull the next task index from a
    mutex-protected shared counter, so uneven cell costs load-balance
    without any static partitioning.

    Crash contract: an exception escaping [work] is fatal to the whole
    pool — no further task is claimed, in-flight tasks on other workers
    drain, every domain is joined, and the first such exception is
    re-raised (with its backtrace) on the calling domain.  Results that
    were completed before the crash are still consumed in order up to
    the first gap.  [work] is responsible for containing any per-task
    failure it wants to survive (as {!Sweep.run} does, recording
    ["ERROR: ..."] results).

    Determinism contract: because delivery order is task-index order and
    [work] must not depend on cross-task shared state, the sequence of
    [consume] calls is independent of [jobs].  Per-domain runtime state
    that the harness itself owns is already safe: {!Guard}'s ambient
    guard is domain-local, and {!Faults} combinators keep all their
    state per instance. *)

val default_cap : int
(** Upper bound applied by {!default_jobs} ([8]): sweeps are
    memory-bandwidth-bound well before wide fan-out pays off. *)

val default_jobs : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] capped at [cap] (default
    {!default_cap}) and floored at 1 — the default for the sweep
    binaries' [--jobs]. *)

val run :
  jobs:int ->
  tasks:int ->
  work:(int -> 'a) ->
  consume:(int -> 'a -> unit) ->
  unit
(** [run ~jobs ~tasks ~work ~consume] computes [work i] for every
    [i] in [0 .. tasks-1] on up to [jobs] domains and calls [consume i
    (work i)] in increasing [i] on the calling domain.

    With [jobs <= 1] (or a single task) no domain is spawned and the
    calls interleave exactly as the sequential loop
    [for i ... do consume i (work i) done] — byte-for-byte the pre-pool
    behavior, including undelayed exception propagation.

    [consume] raising stops the pool the same way a [work] crash does
    (drain, join, re-raise).
    @raise Invalid_argument on a negative [tasks]. *)
