type config = { base : float; max : float; seed : int }

let default = { base = 0.05; max = 2.0; seed = 0x5EED }

let validate c =
  if c.base < 0. then invalid_arg "Backoff: base must be >= 0";
  if c.max < c.base then invalid_arg "Backoff: max must be >= base"

(* SplitMix64 finalizer: the jitter for (seed, key, attempt) is a pure
   function of those three values, so a retry schedule replays exactly. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let delay config ~key ~attempt =
  (* exponential: base * 2^(attempt-1), capped, with [0,1)x jitter *)
  let expo = config.base *. (2. ** float_of_int (max 0 (attempt - 1))) in
  let expo = Float.min expo config.max in
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int config.seed) 0x9E3779B97F4A7C15L)
         (Int64.of_int ((Hashtbl.hash key * 8191) + attempt)))
  in
  let unit_float =
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.
  in
  expo *. (1. +. unit_float)
