type limits = {
  max_color_calls : int option;
  max_work : int option;
  deadline : float option;
}

let no_limits = { max_color_calls = None; max_work = None; deadline = None }

let default_limits =
  { max_color_calls = None; max_work = Some 50_000_000; deadline = None }

type t = {
  limits : limits;
  started : float;
  mutable color_calls : int;
  mutable work : int;
  mutable since_poll : int;  (* ticks since the last deadline poll *)
  mutable fault : Misbehavior.t option;
}

exception Misbehaved of Misbehavior.t

let () =
  (* The printer keeps executor-recorded messages readable. *)
  Printexc.register_printer (function
    | Misbehaved m -> Some (Misbehavior.to_string m)
    | _ -> None)

let create ?(limits = default_limits) () =
  (* Backtraces feed Misbehavior.Raised and Run_stats.Algorithm_failure.
     Flipping the recorder is a global runtime effect, so it happens here
     — only in programs that actually run guarded games — not at library
     initialization, where merely linking the harness would pay it. *)
  Printexc.record_backtrace true;
  {
    limits;
    started = Unix.gettimeofday ();
    color_calls = 0;
    work = 0;
    since_poll = 0;
    fault = None;
  }

let fault t = t.fault
let color_calls t = t.color_calls
let work t = t.work

let is_fatal = function
  | Stack_overflow | Out_of_memory | Sys.Break -> true
  | _ -> false

(* Only the first certificate is recorded — and only that first one is
   traced, so a poisoned guard failing fast does not spam the trace. *)
let record_fault t m =
  if t.fault = None then begin
    t.fault <- Some m;
    if Trace.on () then
      Trace.emit
        (Trace.Misbehavior
           { label = Misbehavior.label m; detail = Misbehavior.to_string m })
  end

let fail t m =
  record_fault t m;
  raise (Misbehaved m)

let check_deadline t =
  match t.limits.deadline with
  | None -> ()
  | Some deadline ->
      let elapsed = Unix.gettimeofday () -. t.started in
      if elapsed > deadline then
        fail t (Misbehavior.Deadline_exceeded { elapsed; deadline })

(* The ambient guard is domain-local, not global: each {!Pool} worker
   runs its own cells with its own innermost guard, so a guard installed
   on one domain must never meter (or fail) a game on another. *)
let current : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let tick ?(cost = 1) () =
  match !(Domain.DLS.get current) with
  | None -> ()
  | Some t ->
      t.work <- t.work + cost;
      (match t.limits.max_work with
      | Some budget when t.work > budget ->
          fail t (Misbehavior.Budget_exhausted { used = t.work; budget })
      | _ -> ());
      (* Deadline polls are amortized per tick, not per work unit: a
         cumulative-work test would skip multiples of 256 whenever a
         tick's cost exceeds 1, making poll latency depend on cost
         granularity.  The budget alone is deterministic. *)
      t.since_poll <- t.since_poll + 1;
      if t.since_poll >= 256 then begin
        t.since_poll <- 0;
        check_deadline t
      end

let with_current t f =
  let current = Domain.DLS.get current in
  let saved = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := saved) f

let raised = function
  | Models.Run_stats.Dishonest_transcript message ->
      (* Typed audit failures keep their sharper certificate instead of
         degrading to a generic Raised — classification is by exception
         constructor, never by message text. *)
      Misbehavior.Dishonest_transcript { message }
  | exn ->
      let backtrace = Printexc.get_backtrace () in
      Misbehavior.Raised { message = Printexc.to_string exn; backtrace }

let guarded_call t inst view =
  (match t.fault with Some m -> raise (Misbehaved m) | None -> ());
  t.color_calls <- t.color_calls + 1;
  (match t.limits.max_color_calls with
  | Some budget when t.color_calls > budget ->
      fail t (Misbehavior.Budget_exhausted { used = t.color_calls; budget })
  | _ -> ());
  check_deadline t;
  if Trace.on () then
    Trace.emit (Trace.Color_call { calls = t.color_calls; work = t.work });
  with_current t (fun () ->
      match inst view with
      | color -> color
      | exception (Misbehaved _ as e) -> raise e
      | exception e when is_fatal e -> raise e
      | exception exn -> fail t (raised exn))

(* One skipped color call's worth of accounting — everything
   [guarded_call] does except run the instance, so a memo-served answer
   leaves the meters, budget faults and Color_call trace exactly where a
   live call would have. *)
let charge t =
  (match t.fault with Some m -> raise (Misbehaved m) | None -> ());
  t.color_calls <- t.color_calls + 1;
  (match t.limits.max_color_calls with
  | Some budget when t.color_calls > budget ->
      fail t (Misbehavior.Budget_exhausted { used = t.color_calls; budget })
  | _ -> ());
  check_deadline t;
  if Trace.on () then
    Trace.emit (Trace.Color_call { calls = t.color_calls; work = t.work })

let algorithm t algo =
  {
    algo with
    Models.Algorithm.instantiate =
      (fun ~n ~palette ~oracle ->
        match
          with_current t (fun () ->
              algo.Models.Algorithm.instantiate ~n ~palette ~oracle)
        with
        | inst -> fun view -> guarded_call t inst view
        | exception (Misbehaved m) -> fun _ -> raise (Misbehaved m)
        | exception e when is_fatal e -> raise e
        | exception exn ->
            let m = raised exn in
            record_fault t m;
            fun _ -> raise (Misbehaved m));
  }

let capture _t f =
  match f () with
  | v -> Ok v
  | exception (Misbehaved m) -> Error m
  | exception e when is_fatal e -> raise e
  | exception exn -> Error (raised exn)
