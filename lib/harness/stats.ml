(* Re-export: see the note in trace.ml — one registry, two names. *)
include Obs.Stats
