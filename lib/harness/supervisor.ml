type config = {
  retries : int;
  timeout : float option;
  kill_grace : float;
  heartbeat_interval : int;
  backoff_base : float;
  backoff_max : float;
  seed : int;
}

let default_config =
  {
    retries = 2;
    timeout = None;
    kill_grace = 0.5;
    heartbeat_interval = 1;
    backoff_base = 0.05;
    backoff_max = 2.0;
    seed = 0x5EED;
  }

let validate_config c =
  if c.retries < 0 then
    invalid_arg "Supervisor: retries must be >= 0";
  (match c.timeout with
  | Some t when t <= 0. -> invalid_arg "Supervisor: timeout must be positive"
  | _ -> ());
  if c.kill_grace <= 0. then
    invalid_arg "Supervisor: kill_grace must be positive";
  if c.heartbeat_interval < 0 then
    invalid_arg "Supervisor: heartbeat_interval must be >= 0";
  if c.backoff_base < 0. then
    invalid_arg "Supervisor: backoff_base must be >= 0";
  if c.backoff_max < c.backoff_base then
    invalid_arg "Supervisor: backoff_max must be >= backoff_base"

type failure =
  | Exited of int
  | Signaled of int
  | Unresponsive of { elapsed : float; limit : float; forced : bool }
  | Protocol of string

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigalrm then "SIGALRM"
  else if s = Sys.sigpipe then "SIGPIPE"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sighup then "SIGHUP"
  else if s = Sys.sigquit then "SIGQUIT"
  else "signal#" ^ string_of_int s

let pp_failure ppf = function
  | Exited n -> Format.fprintf ppf "exited %d" n
  | Signaled s -> Format.fprintf ppf "killed by %s" (signal_name s)
  | Unresponsive { elapsed; limit; forced } ->
      Format.fprintf ppf "unresponsive after %.3fs (limit %.3fs%s)" elapsed limit
        (if forced then ", forced SIGKILL" else "")
  | Protocol msg -> Format.fprintf ppf "protocol error: %s" msg

let failure_to_string f = Format.asprintf "%a" pp_failure f

let to_misbehavior = function
  | Unresponsive { elapsed; limit; forced = _ } ->
      Some (Misbehavior.Unresponsive { elapsed; limit })
  | Exited _ | Signaled _ | Protocol _ -> None

type quarantine = { key : string; attempts : int; failures : failure list }

let quarantine_to_string q =
  Printf.sprintf "QUARANTINED after %d attempts: %s" q.attempts
    (String.concat "; " (List.map failure_to_string q.failures))

type outcome = Done of string | Failed of string | Quarantined of quarantine

(* ------------------------- deterministic backoff ------------------------- *)

let backoff_delay config key attempt =
  Backoff.delay
    { Backoff.base = config.backoff_base; max = config.backoff_max; seed = config.seed }
    ~key ~attempt

(* ------------------------------ child side ------------------------------ *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    match Unix.write fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len
  end

let heartbeat_byte = Bytes.of_string "H"

(* Runs [work], speaks the reply protocol on [w], and never returns.
   [Unix._exit] (not [exit]) so inherited channel buffers — the parent's
   trace sink, the parent's stdout — are not flushed a second time. *)
let child_main ~config ~work ~idx w =
  Trace.detach_in_child ();
  (* Inherited shards would make the child's stats drain re-count the
     parent's whole history; from here on the child accumulates only its
     own cell. *)
  Stats.reset ();
  Sys.set_signal Sys.sigint Sys.Signal_default;
  if config.heartbeat_interval > 0 then begin
    Sys.set_signal Sys.sigalrm
      (Sys.Signal_handle
         (fun _ ->
           (try write_all w heartbeat_byte 0 1
            with Unix.Unix_error _ -> ());
           ignore (Unix.alarm config.heartbeat_interval)));
    ignore (Unix.alarm config.heartbeat_interval)
  end;
  let reply tag payload =
    (* Disarm heartbeats first so no 'H' can interleave the frame. *)
    ignore (Unix.alarm 0);
    if config.heartbeat_interval > 0 then
      Sys.set_signal Sys.sigalrm Sys.Signal_ignore;
    let frame = Wire.encode ~tag payload in
    (try write_all w frame 0 (Bytes.length frame) with Unix.Unix_error _ -> ())
  in
  let code =
    match work idx with
    | s ->
        (if Stats.on () then
           match Stats.drain () with
           | [] -> ()
           | snap -> reply 'S' (Stats.to_string snap));
        reply 'R' s;
        0
    | exception Sys.Break -> 130
    | exception exn ->
        (* Even in-process-fatal conditions (Stack_overflow, Out_of_memory)
           are contained here: the whole point of process isolation is that
           no cell, however pathological, takes the run down with it. *)
        reply 'E' (Printexc.to_string exn);
        0
  in
  Unix._exit code

(* ------------------------------ parent side ------------------------------ *)

(* The reply protocol is Wire framing: framed 'R'/'E' terminal replies
   and an optional framed 'S' stats snapshot before a successful 'R',
   bare 'H' heartbeats.  One decoder per child stream. *)
let reply_decoder () = Wire.decoder ~tags:"RES" ~bare:"H" ()

type slot = {
  pid : int;
  idx : int;
  skey : string;
  fd : Unix.file_descr;
  dec : Wire.decoder;
  start : float;
  mutable reply : (char * string) option;
  mutable stats : string option;
  mutable bad : string option;
  mutable term_at : float option;
  mutable killed : bool;
  mutable timed_out : bool;
}

let run ?(config = default_config) ?(should_stop = fun () -> false) ~jobs
    ~tasks ~key ?(inline = fun _ -> None) ~work
    ?(on_stats = fun ~task:_ payload -> ignore (Stats.absorb_string payload))
    ?(complete = fun _ _ -> ()) ~consume () =
  validate_config config;
  if jobs < 1 then invalid_arg "Supervisor.run: jobs must be >= 1";
  if tasks < 0 then invalid_arg "Supervisor.run: tasks must be >= 0";
  let outcomes : outcome option array = Array.make (max tasks 1) None in
  let next_consume = ref 0 in
  let deliver idx outcome =
    complete idx outcome;
    outcomes.(idx) <- Some outcome;
    while
      !next_consume < tasks && outcomes.(!next_consume) <> None
    do
      (match outcomes.(!next_consume) with
      | Some o -> consume !next_consume o
      | None -> assert false);
      incr next_consume
    done
  in
  let next_fresh = ref 0 in
  (* (due-time, idx, attempt), kept sorted by due-time *)
  let retry_queue = ref [] in
  let failures_of : (int, failure list) Hashtbl.t = Hashtbl.create 16 in
  let active = ref [] in
  let interrupted = ref false in
  let interrupt_term_at = ref None in
  let prev_cutime = ref (Unix.times ()).Unix.tms_cutime in
  let prev_cstime = ref (Unix.times ()).Unix.tms_cstime in
  let spawn idx attempt =
    let skey = key idx in
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        child_main ~config ~work ~idx w
    | pid ->
        Unix.close w;
        if Trace.on () then
          Trace.emit (Trace.Child_spawn { key = skey; pid; attempt });
        if Metrics.on () then Metrics.incr "supervisor.spawns";
        active :=
          {
            pid;
            idx;
            skey;
            fd = r;
            dec = reply_decoder ();
            start = Unix.gettimeofday ();
            reply = None;
            stats = None;
            bad = None;
            term_at = None;
            killed = false;
            timed_out = false;
          }
          :: !active
  in
  let fill () =
    let continue = ref true in
    while !continue do
      if !interrupted || List.length !active >= jobs then continue := false
      else begin
        let now = Unix.gettimeofday () in
        match !retry_queue with
        | (due, idx, attempt) :: rest when due <= now ->
            retry_queue := rest;
            spawn idx attempt
        | _ ->
            if !next_fresh < tasks then begin
              let idx = !next_fresh in
              incr next_fresh;
              match inline idx with
              | Some s -> deliver idx (Done s)
              | None -> spawn idx 0
            end
            else continue := false
      end
    done
  in
  let parse slot =
    let again = ref true in
    while !again do
      again := false;
      if slot.reply = None && slot.bad = None then
        match Wire.decode slot.dec with
        | Ok None -> ()
        | Ok (Some { Wire.tag = 'H'; _ }) ->
            if Trace.on () then
              Trace.emit
                (Trace.Child_heartbeat { key = slot.skey; pid = slot.pid });
            if Metrics.on () then Metrics.incr "supervisor.heartbeats";
            again := true
        | Ok (Some { Wire.tag = 'S'; payload }) ->
            slot.stats <- Some payload;
            again := true
        | Ok (Some { Wire.tag; payload }) -> slot.reply <- Some (tag, payload)
        | Error e -> slot.bad <- Some (Wire.error_to_string e)
    done
  in
  let kill_pid pid signal name =
    match Unix.kill pid signal with
    | () -> ()
    | exception Unix.Unix_error _ -> ignore name
  in
  let send_kill slot signal name now =
    kill_pid slot.pid signal name;
    if Trace.on () then
      Trace.emit
        (Trace.Child_kill
           {
             key = slot.skey;
             pid = slot.pid;
             signal = name;
             elapsed = now -. slot.start;
           })
  in
  let rec waitpid_retry pid =
    match Unix.waitpid [] pid with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  in
  let reap slot =
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    let _, status = waitpid_retry slot.pid in
    let tm = Unix.times () in
    let cpu_user = tm.Unix.tms_cutime -. !prev_cutime in
    let cpu_sys = tm.Unix.tms_cstime -. !prev_cstime in
    prev_cutime := tm.Unix.tms_cutime;
    prev_cstime := tm.Unix.tms_cstime;
    let status_str =
      match status with
      | Unix.WEXITED n -> "exit:" ^ string_of_int n
      | Unix.WSIGNALED s -> "signal:" ^ signal_name s
      | Unix.WSTOPPED s -> "stopped:" ^ signal_name s
    in
    if Trace.on () then
      Trace.emit
        (Trace.Child_exit
           { key = slot.skey; pid = slot.pid; status = status_str; cpu_user; cpu_sys });
    active := List.filter (fun s -> s != slot) !active;
    match slot.reply with
    | Some ('R', payload) ->
        (match slot.stats with
        | Some snap -> on_stats ~task:slot.idx snap
        | None -> ());
        deliver slot.idx (Done payload)
    | Some ('E', payload) -> deliver slot.idx (Failed payload)
    | Some _ -> assert false
    | None ->
        (* Abnormal death.  Under interruption the children died because
           we (or the terminal's process group) killed them: abandon the
           task so a resume reruns it, charging no retry. *)
        if not !interrupted then begin
          let failure =
            if slot.timed_out then
              Unresponsive
                {
                  elapsed = Unix.gettimeofday () -. slot.start;
                  limit = Option.value config.timeout ~default:0.;
                  forced = slot.killed;
                }
            else
              match slot.bad with
              | Some msg -> Protocol msg
              | None -> (
                  match status with
                  | Unix.WEXITED 0 -> Protocol "no reply before exit"
                  | Unix.WEXITED n -> Exited n
                  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Signaled s)
          in
          (match to_misbehavior failure with
          | Some m ->
              if Trace.on () then
                Trace.emit
                  (Trace.Misbehavior
                     { label = Misbehavior.label m; detail = Misbehavior.to_string m })
          | None -> ());
          let fails =
            failure
            :: (try Hashtbl.find failures_of slot.idx with Not_found -> [])
          in
          Hashtbl.replace failures_of slot.idx fails;
          let nfails = List.length fails in
          if nfails > config.retries then begin
            let q =
              { key = slot.skey; attempts = nfails; failures = List.rev fails }
            in
            if Trace.on () then
              Trace.emit
                (Trace.Cell_quarantined
                   {
                     key = slot.skey;
                     attempts = nfails;
                     reason = failure_to_string failure;
                   });
            if Metrics.on () then Metrics.incr "supervisor.quarantines";
            deliver slot.idx (Quarantined q)
          end
          else begin
            let attempt = nfails in
            let delay = backoff_delay config slot.skey attempt in
            if Trace.on () then
              Trace.emit (Trace.Cell_retry { key = slot.skey; attempt; delay });
            if Metrics.on () then Metrics.incr "supervisor.retries";
            let due = Unix.gettimeofday () +. delay in
            let rec insert = function
              | [] -> [ (due, slot.idx, attempt) ]
              | (d, _, _) :: _ as l when due < d -> (due, slot.idx, attempt) :: l
              | x :: rest -> x :: insert rest
            in
            retry_queue := insert !retry_queue
          end
        end
  in
  let check_watchdog now =
    List.iter
      (fun slot ->
        if slot.reply = None then begin
          (match config.timeout with
          | Some limit when slot.term_at = None && now -. slot.start > limit ->
              slot.timed_out <- true;
              slot.term_at <- Some now;
              send_kill slot Sys.sigterm "sigterm" now;
              if Metrics.on () then Metrics.incr "supervisor.kills.term"
          | _ -> ());
          match slot.term_at with
          | Some t when (not slot.killed) && now -. t > config.kill_grace ->
              slot.killed <- true;
              send_kill slot Sys.sigkill "sigkill" now;
              if Metrics.on () then Metrics.incr "supervisor.kills.kill"
          | _ -> ()
        end)
      !active
  in
  let select_timeout now =
    let t = ref 0.25 in
    let consider due = t := Float.max 0. (Float.min !t (due -. now)) in
    List.iter
      (fun slot ->
        if slot.reply = None then begin
          (match (config.timeout, slot.term_at) with
          | Some limit, None -> consider (slot.start +. limit)
          | _ -> ());
          match slot.term_at with
          | Some at when not slot.killed -> consider (at +. config.kill_grace)
          | _ -> ()
        end)
      !active;
    (match !retry_queue with (due, _, _) :: _ -> consider due | [] -> ());
    (match !interrupt_term_at with
    | Some at -> consider (at +. config.kill_grace)
    | None -> ());
    !t
  in
  let chunk = Bytes.create 4096 in
  let handle_ready fd =
    match List.find_opt (fun s -> s.fd = fd) !active with
    | None -> ()
    | Some slot -> (
        match Unix.read slot.fd chunk 0 (Bytes.length chunk) with
        | 0 -> reap slot
        | n ->
            Wire.feed slot.dec chunk 0 n;
            parse slot
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  in
  let finally () =
    (* Never leak children: on any exit path, kill and reap what's left. *)
    List.iter (fun s -> kill_pid s.pid Sys.sigkill "sigkill") !active;
    List.iter
      (fun s ->
        (try Unix.close s.fd with Unix.Unix_error _ -> ());
        ignore (waitpid_retry s.pid))
      !active;
    active := []
  in
  Fun.protect ~finally (fun () ->
      while
        !active <> []
        || ((not !interrupted) && (!retry_queue <> [] || !next_fresh < tasks))
      do
        if (not !interrupted) && should_stop () then begin
          interrupted := true;
          retry_queue := [];
          let now = Unix.gettimeofday () in
          interrupt_term_at := Some now;
          List.iter
            (fun slot ->
              if slot.reply = None then send_kill slot Sys.sigterm "sigterm" now)
            !active
        end;
        (match !interrupt_term_at with
        | Some at when Unix.gettimeofday () -. at > config.kill_grace ->
            let now = Unix.gettimeofday () in
            List.iter
              (fun slot ->
                if not slot.killed then begin
                  slot.killed <- true;
                  send_kill slot Sys.sigkill "sigkill" now
                end)
              !active
        | _ -> ());
        fill ();
        let now = Unix.gettimeofday () in
        check_watchdog now;
        let fds = List.map (fun s -> s.fd) !active in
        if fds = [] then begin
          (* Nothing in flight: we are waiting out a retry backoff. *)
          match !retry_queue with
          | (due, _, _) :: _ ->
              let d = due -. now in
              if d > 0. then Unix.sleepf (Float.min d 0.25)
          | [] -> ()
        end
        else begin
          match Unix.select fds [] [] (select_timeout now) with
          | ready, _, _ -> List.iter handle_ready ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        end
      done)
