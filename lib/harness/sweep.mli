(** Crash-tolerant, checkpointed — and optionally parallel — sweep
    runner for the [bin/sweep_thm*] binaries.

    A sweep is an ordered list of {e cells}, each with a unique key and
    a thunk producing its (possibly multi-line) result string.  With a
    [?checkpoint] file, every finished cell is appended as one
    escaped line-delimited record ([key TAB result]) and flushed
    immediately; with [~resume:true], cells whose keys already appear in
    the file replay their recorded result instead of re-running — so a
    killed-and-resumed sweep prints byte-identical final output to an
    uninterrupted one.

    With [?jobs] above 1, cells are dispatched across a {!Pool} of that
    many worker domains.  The observable contract is unchanged:

    {ul
    {- {e ordered output} — results are printed to [ppf] in cell order,
       on the calling domain; a completion buffer holds out-of-order
       results until their turn;}
    {- {e checkpoint integrity} — records are appended under a mutex and
       flushed whole, so the file keeps the newline-terminated
       torn-record semantics regardless of the jobs count;}
    {- {e deterministic replay} — [--resume] output is byte-identical
       whatever [jobs] was on the original or the resuming run (replayed
       results come from the checkpoint table, never from re-execution);}
    {- {e stats persistence} — when {!Stats} is enabled, each record's
       value carries the cell's own stats contribution after a [NUL]
       byte ({!Stats.scoped} in-domain, the supervisor's ['S'] frame
       under [`Process]); replaying a cell re-absorbs its delta, so a
       killed-and-resumed sweep drains the same totals as an
       uninterrupted one.  With stats disabled the journal bytes are
       unchanged from the pre-stats format, and pre-stats journals
       resume cleanly (they simply carry no deltas);}
    {- {e per-cell containment} — a cell raising a non-fatal exception
       records and prints ["ERROR: ..."] and only that cell degrades.}}

    Interrupts and fatal errors: sequentially, SIGINT is trapped as
    [Sys.Break] — fatal to every containment layer ({!Guard.is_fatal}),
    so an interrupt landing inside guarded algorithm or adversary code
    aborts the cell instead of being recorded as its result.  Under a
    pool, signal handlers are only delivered on one domain, so SIGINT
    instead stops workers from claiming further cells while in-flight
    cells drain (an in-flight cell runs to completion and is
    checkpointed).  Either way the sweep surfaces as {!Interrupted} once
    the checkpoint is flushed and closed.  Any other fatal exception
    ([Stack_overflow], [Out_of_memory]) in any worker drains the pool
    the same way and then re-raises.  Only newline-terminated checkpoint
    records replay, so a record torn by a kill mid-write reruns its
    cell. *)

type cell = { key : string; run : unit -> string }

(** The checkpoint journal behind [?checkpoint] — and behind the
    {!Server}'s crash-recovery log.  A journal is a line-delimited file
    of escaped [key TAB value] records under a [#sweep-checkpoint vN]
    header; appends are mutex-serialized, flushed whole, and traced as
    [Checkpoint_flush] events, so a kill can tear at most the final
    record and {!Journal.load} drops exactly that torn tail.

    Since v2 every appended record carries an integrity trailer
    ([... TAB @crc32hex:length], checksummed with {!Wire.crc32}); a
    record whose trailer is missing or fails verification — torn,
    bit-flipped, hand-edited — is {e skipped} on load with a typed
    warning ([Journal_corrupt] trace event, [sweep.journal_corrupt_records]
    metric, one stderr line), so a resume reruns exactly the affected
    cells instead of replaying corrupted bytes.  v0 (headerless) and v1
    files replay unchanged; resuming into one appends a v2 header line
    so new records are CRC-protected while the old prefix keeps its
    original parsing rules. *)
module Journal : sig
  val version : int
  (** Journal format version, [2].  {!load} accepts this version and
      older (a headerless file is v0) and rejects newer. *)

  val header : string
  (** The header line written at the top of a fresh journal. *)

  type t
  (** An open journal, ready to append. *)

  val open_out : ?resume:bool -> string -> t
  (** Open [path] for appending.  Without [~resume] an existing file is
      replaced by a fresh headered one — the header is written to a tmp
      file and atomically renamed into place, so a kill during creation
      can never leave a half-written header.  With [~resume:true]
      records are appended after repairing a torn final record (and,
      for a pre-v2 file, appending a v2 header line). *)

  val append : t -> key:string -> string -> unit
  (** Append one record — escaped, CRC-trailered, and flushed whole —
      under the journal's mutex.  Safe from any domain. *)

  val close : t -> unit

  val load : string -> (string * string) list
  (** All complete, integrity-checked records in file order (a missing
      file is []).  Newline-terminated records only: a torn final
      record is dropped, and a v2 record failing its CRC/length check
      is skipped with the typed warning described above.  Duplicate
      keys are all returned — callers that want last-record-wins
      semantics use {!load_table}.
      @raise Invalid_argument on a journal written by a newer format
      version. *)

  val load_table : string -> (string, string) Hashtbl.t
  (** {!load} folded into a table, later records superseding earlier
      ones — the replay semantics of [--resume]. *)

  type corruption = { line : int; reason : string }
  (** One skipped record: 1-based line number in the journal file and a
      human-readable reason (malformed trailer, length mismatch, crc
      mismatch, missing separator). *)

  type fsck_report = {
    version : int;  (** last header version seen; 0 = headerless v0 *)
    records : int;  (** records that parsed and verified *)
    corrupt : corruption list;  (** skipped records, in file order *)
  }

  val fsck : string -> fsck_report
  (** Integrity-check a journal without replaying it — the engine
      behind [trace_report.exe journal-fsck].  Emits no warnings
      itself; corruption is returned, not printed.
      @raise Invalid_argument like {!load} on a newer-format journal. *)
end

val join_delta : string -> string -> string
(** [join_delta out delta] is the checkpoint record value carrying a
    stats contribution: [out] when [delta] is empty, else
    [out NUL delta].  [NUL] occurs in neither side (results are
    printable text, the delta is compact JSON), so {!split_delta}
    inverts it.  The {!Server} journals its ["d:"] records with the
    same scheme. *)

val split_delta : string -> string * string
(** Inverse of {!join_delta}; a value with no [NUL] (any pre-stats
    journal) splits as [(value, "")]. *)

val replay_value : string -> string
(** {!split_delta}, absorbing the delta into {!Stats} (when enabled)
    and returning the output part — the one-stop replay helper for
    journal records. *)

type isolation = [ `In_domain | `Process ]
(** Where cell thunks execute.

    [`In_domain] (the default): on worker domains of a {!Pool} inside
    this process — the PR 2 behavior.

    [`Process]: each cell forks into a child process under
    {!Supervisor.run}; [jobs] bounds concurrent children and {!Pool} is
    not used (forking from spawned domains is unsafe in OCaml 5).  The
    observable contract is preserved — output in cell order,
    byte-identical to the in-domain mode for every cell that returns or
    raises deterministically, same checkpoint format, [--resume]
    equivalence across modes and jobs counts — and three behaviors are
    {e gained}: a cell killed from outside (OOM, stray SIGKILL) is
    retried with seeded backoff and then degrades to one
    ["QUARANTINED ..."] result line instead of destroying the sweep; a
    cell that blocks without ticking is killed by the wall-clock
    watchdog ({!Misbehavior.Unresponsive} — see the guard's documented
    blind spot); and in-process-fatal conditions ([Stack_overflow],
    [Out_of_memory]) inside a cell degrade to ["ERROR: ..."] for that
    cell instead of aborting the run.  Quarantined cells are
    checkpointed like any result, so a resume replays the quarantine
    verbatim (delete its line to rerun the cell).  Game-level trace
    events from inside cells are not emitted in this mode (children
    detach the sink); the supervisor's child-lifecycle events take
    their place. *)

exception Interrupted
(** Raised at the sweep boundary after a SIGINT (and honored if a cell
    thunk raises it directly): the sweep stopped cleanly, completed
    cells are checkpointed. *)

val run :
  ?resume:bool ->
  ?checkpoint:string ->
  ?jobs:int ->
  ?isolation:isolation ->
  ?supervisor:Supervisor.config ->
  ppf:Format.formatter ->
  cell list ->
  unit
(** Run the cells — in order with [jobs <= 1] (the default), or
    dispatched over a [jobs]-domain {!Pool} — printing each result line
    to [ppf] in cell order either way.  Without [~resume] an existing
    checkpoint file is truncated.  Cell thunks must not share mutable
    state with each other; everything the harness itself provides
    ({!Guard}'s ambient state, {!Faults} combinators) is already
    domain-safe per cell.

    [?isolation] selects the execution backend (see {!isolation});
    [?supervisor] tunes the [`Process] backend's retry/watchdog knobs
    (ignored under [`In_domain]) — defaults to
    {!Supervisor.default_config}.

    @raise Invalid_argument on duplicate cell keys, [jobs < 1], or an
    invalid supervisor config. *)

val int_axis : ?flag:string -> string -> int list
(** Parse a comma-separated parameter axis: ["1,2,8"] -> [[1; 2; 8]].
    [?flag] names the command-line flag in error messages.
    @raise Invalid_argument on non-integer entries or an empty axis —
    an empty axis would silently produce a zero-cell sweep. *)

val string_axis : ?flag:string -> string -> string list
(** Parse a comma-separated string axis, trimming blanks.
    @raise Invalid_argument on an empty axis, naming [?flag] like
    {!int_axis}. *)
