(** Crash-tolerant, checkpointed sweep runner for the [bin/sweep_thm*]
    binaries.

    A sweep is an ordered list of {e cells}, each with a unique key and
    a thunk producing its (possibly multi-line) result string.  With a
    [?checkpoint] file, every finished cell is appended as one
    escaped line-delimited record ([key TAB result]) and flushed
    immediately; with [~resume:true], cells whose keys already appear in
    the file replay their recorded result instead of re-running — so a
    killed-and-resumed sweep prints byte-identical final output to an
    uninterrupted one.

    Robustness contract: a cell that raises a non-fatal exception
    records and prints ["ERROR: ..."] and the sweep continues; SIGINT is
    trapped as [Sys.Break] — fatal to every containment layer
    ({!Guard.is_fatal}), so an interrupt landing inside guarded
    algorithm or adversary code aborts the cell instead of being
    recorded as its result — and surfaces as {!Interrupted} once the
    checkpoint is flushed and closed; other fatal exceptions propagate
    after the same cleanup.  Only newline-terminated checkpoint records
    replay, so a record torn by a kill mid-write reruns its cell. *)

type cell = { key : string; run : unit -> string }

exception Interrupted
(** Raised at the sweep boundary after a SIGINT (and honored if a cell
    thunk raises it directly): the sweep stopped cleanly, completed
    cells are checkpointed. *)

val run :
  ?resume:bool ->
  ?checkpoint:string ->
  ppf:Format.formatter ->
  cell list ->
  unit
(** Run the cells in order, printing each result line to [ppf].
    Without [~resume] an existing checkpoint file is truncated.
    @raise Invalid_argument on duplicate cell keys. *)

val int_axis : string -> int list
(** Parse a comma-separated parameter axis: ["1,2,8"] -> [[1; 2; 8]].
    @raise Invalid_argument on non-integer entries. *)

val string_axis : string -> string list
(** Parse a comma-separated string axis, trimming blanks. *)
