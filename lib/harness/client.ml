let job_id ~kind ~payload = Digest.to_hex (Digest.string (kind ^ "\x00" ^ payload))

type campaign = {
  results : string list;
  resubmits : int;
  rejections : int;
  reconnects : int;
}

(* ------------------------------ plumbing ------------------------------ *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    match Unix.write fd buf pos len with
    | n -> write_all fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf pos len
  end

let sockaddr_of_spec spec =
  match String.index_opt spec ':' with
  | Some 3 when String.sub spec 0 3 = "tcp" -> (
      let port = String.sub spec 4 (String.length spec - 4) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Unix.ADDR_INET (Unix.inet_addr_loopback, p)
      | _ -> invalid_arg ("Client: bad tcp socket spec " ^ spec))
  | _ -> Unix.ADDR_UNIX spec

exception Conn_lost of string

let connect ~recv_timeout spec =
  let addr = sockaddr_of_spec spec in
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd addr;
     (* silence bound: a wedged server becomes Conn_lost, not a hang *)
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let with_sigpipe_ignored f =
  let prev =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun b -> Sys.set_signal Sys.sigpipe b) prev)
    f

let send_frame fd ~tag payload =
  let frame = Wire.encode ~tag payload in
  try write_all fd frame 0 (Bytes.length frame)
  with Unix.Unix_error (e, _, _) -> raise (Conn_lost (Unix.error_message e))

(* Read until the decoder yields one frame.  Every way the read can go
   wrong — EOF (dropped or truncated connection), reset, timeout, a
   frame that does not decode — is one exception, [Conn_lost]: the
   caller's answer to all of them is the same (reconnect, resubmit). *)
let read_frame fd dec chunk =
  let rec go () =
    match Wire.decode dec with
    | Ok (Some frame) -> frame
    | Error e -> raise (Conn_lost (Wire.error_to_string e))
    | Ok None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise (Conn_lost "eof")
        | n ->
            Wire.feed dec chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            raise (Conn_lost "receive timeout")
        | exception Unix.Unix_error (e, _, _) ->
            raise (Conn_lost (Unix.error_message e)))
  in
  go ()

let split_tab s =
  match String.index_opt s '\t' with
  | None -> (s, "")
  | Some t -> (String.sub s 0 t, String.sub s (t + 1) (String.length s - t - 1))

(* every server→client tag: ack, result, reject, health, stats (usage),
   error, and the depth-probe reply *)
let reply_tags = "ARXHUED"

(* ------------------------------ endpoint ------------------------------ *)

(* A connected endpoint with its own decoder and read buffer — the
   connection abstraction {!Fleet} multiplexes with [Unix.select]:
   [fd] for readiness, then [pump] to turn one readable edge into
   decoded frames. *)
module Endpoint = struct
  type t = {
    spec : string;
    fd : Unix.file_descr;
    dec : Wire.decoder;
    chunk : Bytes.t;
  }

  let spec t = t.spec
  let fd t = t.fd

  let connect ?(recv_timeout = 30.) spec =
    match connect ~recv_timeout spec with
    | fd -> { spec; fd; dec = Wire.decoder ~tags:reply_tags (); chunk = Bytes.create 4096 }
    | exception Unix.Unix_error (e, _, _) ->
        raise (Conn_lost (Unix.error_message e))

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
  let send t ~tag payload = send_frame t.fd ~tag payload

  let rec drain t acc =
    match Wire.decode t.dec with
    | Ok (Some f) -> drain t (f :: acc)
    | Ok None -> List.rev acc
    | Error e -> raise (Conn_lost (Wire.error_to_string e))

  let pump t =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> raise (Conn_lost "eof")
    | n ->
        Wire.feed t.dec t.chunk 0 n;
        drain t []
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Conn_lost "receive timeout")
    | exception Unix.Unix_error (e, _, _) ->
        raise (Conn_lost (Unix.error_message e))
end

(* ------------------------------ campaign ------------------------------ *)

type jstatus = {
  mutable result : string option;
  mutable attempts : int;  (* rejected submits so far *)
  mutable due : float;  (* no resubmit before this time *)
  mutable submitted : bool;  (* on the current connection *)
}

let run_campaign ?(backoff = Backoff.default) ?(window = 16) ?deadline
    ?(max_attempts = 10_000) ?(recv_timeout = 30.) ~socket specs =
  if window < 1 then invalid_arg "Client: window must be >= 1";
  if max_attempts < 1 then invalid_arg "Client: max_attempts must be >= 1";
  Backoff.validate backoff;
  let deadline_ms =
    match deadline with
    | None -> ""
    | Some s ->
        if s <= 0. then invalid_arg "Client: deadline must be positive";
        string_of_int (int_of_float (s *. 1000.))
  in
  (* unique jobs, in first-appearance order; duplicate specs share an id *)
  let tbl : (string, jstatus) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (kind, payload) ->
      let id = job_id ~kind ~payload in
      if not (Hashtbl.mem tbl id) then begin
        Hashtbl.replace tbl id
          { result = None; attempts = 0; due = 0.; submitted = false };
        order := (id, kind, payload) :: !order
      end)
    specs;
  let order = List.rev !order in
  let resubmits = ref 0 and rejections = ref 0 and reconnects = ref 0 in
  let total_submits = ref 0 in
  let conn_failures = ref 0 in
  let chunk = Bytes.create 4096 in
  let conn : (Unix.file_descr * Wire.decoder) option ref = ref None in
  let drop_conn () =
    match !conn with
    | Some (fd, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        conn := None;
        Hashtbl.iter (fun _ j -> j.submitted <- false) tbl
    | None -> ()
  in
  let ensure_conn () =
    match !conn with
    | Some c -> c
    | None -> (
        match connect ~recv_timeout socket with
        | fd ->
            let c = (fd, Wire.decoder ~tags:reply_tags ()) in
            conn := Some c;
            c
        | exception (Unix.Unix_error (e, _, _)) ->
            raise (Conn_lost (Unix.error_message e)))
  in
  let unresolved () =
    List.filter (fun (id, _, _) -> (Hashtbl.find tbl id).result = None) order
  in
  let inflight () =
    Hashtbl.fold
      (fun _ j n -> if j.result = None && j.submitted then n + 1 else n)
      tbl 0
  in
  let submit fd (id, kind, payload) =
    let j = Hashtbl.find tbl id in
    incr total_submits;
    if !total_submits > List.length order then incr resubmits;
    j.submitted <- true;
    send_frame fd ~tag:'S' (kind ^ "\t" ^ deadline_ms ^ "\n" ^ payload)
  in
  let on_conn_lost reason =
    drop_conn ();
    incr reconnects;
    incr conn_failures;
    if !conn_failures > max_attempts then
      failwith
        (Printf.sprintf "Client: giving up on %s after %d connection failures (%s)"
           socket !conn_failures reason);
    Unix.sleepf (Backoff.delay backoff ~key:"#conn" ~attempt:!conn_failures)
  in
  with_sigpipe_ignored @@ fun () ->
  Fun.protect ~finally:drop_conn @@ fun () ->
  let rec loop () =
    match unresolved () with
    | [] -> ()
    | todo -> (
        match
          let fd, dec = ensure_conn () in
          let now = Unix.gettimeofday () in
          (* fill the window with due, unsubmitted jobs *)
          let slots = ref (window - inflight ()) in
          List.iter
            (fun ((id, _, _) as spec) ->
              let j = Hashtbl.find tbl id in
              if !slots > 0 && (not j.submitted) && j.due <= now then begin
                decr slots;
                submit fd spec
              end)
            todo;
          if inflight () = 0 then begin
            (* everything unresolved is backing off: sleep to the
               earliest due time instead of spinning *)
            let earliest =
              List.fold_left
                (fun acc (id, _, _) ->
                  Float.min acc (Hashtbl.find tbl id).due)
                infinity todo
            in
            if earliest > now then Unix.sleepf (Float.min 1. (earliest -. now))
          end
          else begin
            let { Wire.tag; payload } = read_frame fd dec chunk in
            conn_failures := 0;
            match tag with
            | 'A' -> ()
            | 'R' ->
                let id, result = split_tab payload in
                (match Hashtbl.find_opt tbl id with
                | Some j -> j.result <- Some result
                | None -> ())
            | 'X' ->
                let id, _reason = split_tab payload in
                incr rejections;
                (match Hashtbl.find_opt tbl id with
                | Some j ->
                    j.submitted <- false;
                    j.attempts <- j.attempts + 1;
                    if j.attempts > max_attempts then
                      failwith
                        (Printf.sprintf
                           "Client: job %s rejected %d times, giving up" id
                           j.attempts);
                    j.due <-
                      Unix.gettimeofday ()
                      +. Backoff.delay backoff ~key:id ~attempt:j.attempts
                | None -> ())
            | 'E' -> raise (Conn_lost ("server error: " ^ payload))
            | _ -> ()
          end
        with
        | () -> loop ()
        | exception Conn_lost reason ->
            on_conn_lost reason;
            loop ())
  in
  loop ();
  let results =
    List.map
      (fun (kind, payload) ->
        match (Hashtbl.find tbl (job_id ~kind ~payload)).result with
        | Some r -> r
        | None -> assert false)
      specs
  in
  {
    results;
    resubmits = !resubmits;
    rejections = !rejections;
    reconnects = !reconnects;
  }

(* ------------------------------ one-shots ----------------------------- *)

(* Reachability failures (refused/missing socket, EOF, reset, timeout)
   are a typed [`Unreachable] — a condition callers are expected to
   branch on.  A server that answers with the wrong tag is still a
   [Failure]: that is protocol corruption, not a health state. *)
let one_shot ~recv_timeout ~socket ~request ~expect =
  with_sigpipe_ignored @@ fun () ->
  match connect ~recv_timeout socket with
  | exception Unix.Unix_error (e, _, _) ->
      Error (`Unreachable (Unix.error_message e))
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match
        send_frame fd ~tag:request "";
        read_frame fd (Wire.decoder ~tags:reply_tags ()) (Bytes.create 4096)
      with
      | { Wire.tag; payload } when tag = expect -> Ok payload
      | { Wire.tag; payload } ->
          failwith
            (Printf.sprintf "Client: unexpected %C reply to %C: %s" tag request
               payload)
      | exception Conn_lost reason -> Error (`Unreachable reason))

let health ?(recv_timeout = 30.) ~socket () =
  one_shot ~recv_timeout ~socket ~request:'P' ~expect:'H'

let stats ?(recv_timeout = 30.) ~socket () =
  one_shot ~recv_timeout ~socket ~request:'T' ~expect:'U'
