(* Re-export: the tracing layer lives in [Obs] (below [Models], so the
   executors can emit events too), but its harness-facing name is
   [Harness.Trace] — the sink installed here and the one the executors
   write to are the same. *)
include Obs.Trace
