(** ASCII rendering of grid colorings and revealed regions, for the
    examples and for eyeballing adversary transcripts. *)

val grid_coloring : ?glyphs:string -> Grid2d.t -> (int -> int option) -> string
(** [grid_coloring grid color_of] draws one character per cell: the
    glyph for the cell's color ([glyphs], default ["012345678"]), or
    ['.'] when uncolored.  [color_of] receives the node handle.  Rows
    separated by newlines. *)

val region :
  rows:int * int ->
  cols:int * int ->
  (int -> int -> [ `Colored of int | `Seen | `Unseen ]) ->
  string
(** Draw an arbitrary coordinate window (inclusive bounds): colors as
    digits, seen-but-uncolored as ['o'], unseen as [' ']. *)
