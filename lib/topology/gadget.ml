open Grid_graph

type t = {
  k : int;
  gadgets : int;
  seam : int option;
  graph : Graph.t;
}

let k t = t.k
let gadgets t = t.gadgets
let seam t = t.seam
let graph t = t.graph

let node t ~gadget ~row ~col =
  if
    gadget < 0 || gadget >= t.gadgets || row < 0 || row >= t.k || col < 0
    || col >= t.k
  then invalid_arg "Gadget.node: out of range";
  (((gadget * t.k) + row) * t.k) + col

let coords t v =
  let col = v mod t.k in
  let rest = v / t.k in
  (rest / t.k, rest mod t.k, col)

let create ?seam ~k ~gadgets () =
  if k < 2 then invalid_arg "Gadget.create: k must be >= 2";
  if gadgets < 1 then invalid_arg "Gadget.create: need at least one gadget";
  (match seam with
  | Some s when s < 0 || s >= gadgets - 1 ->
      invalid_arg "Gadget.create: seam out of range"
  | Some _ | None -> ());
  let id g i j = (((g * k) + i) * k) + j in
  let edges = ref [] in
  for g = 0 to gadgets - 1 do
    (* Within the gadget: different row and different column. *)
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        for i' = i + 1 to k - 1 do
          for j' = 0 to k - 1 do
            if j' <> j then edges := (id g i j, id g i' j') :: !edges
          done
        done
      done
    done;
    (* To the next gadget: same rule, except the transposed rule at the seam. *)
    if g + 1 < gadgets then begin
      let transposed = seam = Some g in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          for i' = 0 to k - 1 do
            for j' = 0 to k - 1 do
              let connect =
                if transposed then i <> j' && j <> i' else i <> i' && j <> j'
              in
              if connect then edges := (id g i j, id (g + 1) i' j') :: !edges
            done
          done
        done
      done
    end
  done;
  { k; gadgets; seam; graph = Graph.create ~n:(gadgets * k * k) ~edges:!edges }

let gadget_nodes t g =
  List.init (t.k * t.k) (fun p -> node t ~gadget:g ~row:(p / t.k) ~col:(p mod t.k))

let row_of_gadget t ~gadget ~row = List.init t.k (fun j -> node t ~gadget ~row ~col:j)
let col_of_gadget t ~gadget ~col = List.init t.k (fun i -> node t ~gadget ~row:i ~col)

let canonical_k_coloring t =
  Array.init (t.gadgets * t.k * t.k) (fun v ->
      let g, i, j = coords t v in
      match t.seam with Some s when g > s -> j | Some _ | None -> i)
