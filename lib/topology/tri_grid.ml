open Grid_graph

type t = {
  side : int;
  graph : Graph.t;
  coords : (int * int) array;  (* handle -> (x, y) *)
  index : (int * int, int) Hashtbl.t;  (* (x, y) -> handle *)
}

let side t = t.side
let graph t = t.graph

let mem_xy side x y = x >= 0 && y >= 0 && x + y <= side

let create ~side =
  if side < 0 then invalid_arg "Tri_grid.create: negative side";
  let coords = ref [] and count = ref 0 in
  let index = Hashtbl.create 64 in
  for x = 0 to side do
    for y = 0 to side - x do
      Hashtbl.replace index (x, y) !count;
      coords := (x, y) :: !coords;
      incr count
    done
  done;
  let coords = Array.of_list (List.rev !coords) in
  let edges = ref [] in
  Array.iteri
    (fun v (x, y) ->
      (* Only look at the three "forward" neighbors so each edge appears once. *)
      List.iter
        (fun (x', y') ->
          match Hashtbl.find_opt index (x', y') with
          | Some w -> edges := (v, w) :: !edges
          | None -> ())
        [ (x + 1, y); (x, y + 1); (x + 1, y - 1) ])
    coords;
  { side; graph = Graph.create ~n:!count ~edges:!edges; coords; index }

let mem t ~x ~y = mem_xy t.side x y

let node t ~x ~y =
  match Hashtbl.find_opt t.index (x, y) with
  | Some v -> v
  | None -> invalid_arg "Tri_grid.node: outside the triangle"

let coords t v = t.coords.(v)

let canonical_3_coloring t =
  Array.map (fun (x, y) -> (((x - y) mod 3) + 3) mod 3) t.coords

let triangles_containing t v =
  let x, y = coords t v in
  let get (a, b) = Hashtbl.find_opt t.index (a, b) in
  (* Each node belongs to up to six unit triangles; enumerate the corner
     pairs that complete a 3-clique with (x, y). *)
  let candidates =
    [
      ((x + 1, y), (x, y + 1));
      ((x - 1, y), (x, y - 1));
      ((x + 1, y), (x + 1, y - 1));
      ((x, y - 1), (x + 1, y - 1));
      ((x - 1, y), (x - 1, y + 1));
      ((x, y + 1), (x - 1, y + 1));
    ]
  in
  List.filter_map
    (fun (p, q) ->
      match (get p, get q) with
      | Some a, Some b when Graph.mem_edge t.graph a b -> Some (List.sort compare [ v; a; b ])
      | _ -> None)
    candidates
  |> List.sort_uniq compare
