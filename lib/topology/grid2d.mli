(** Two-dimensional grids: simple, cylindrical and toroidal (Section 2.1).

    An [(a x b)] grid has [a] rows and [b] columns; node [(i, j)] sits in
    row [i] and column [j] (0-indexed here, 1-indexed in the paper).  Two
    nodes are adjacent iff their coordinates differ by one in exactly one
    dimension; cylindrical grids additionally glue the left and right
    borders, toroidal grids glue both pairs of borders. *)

type wrap =
  | Simple  (** rows and columns induce paths *)
  | Cylindrical  (** rows induce cycles, columns induce paths *)
  | Toroidal  (** rows and columns induce cycles *)

type t

val create : wrap -> rows:int -> cols:int -> t
(** [create wrap ~rows ~cols] builds the grid.  Wrapping edges in a
    dimension require at least 3 nodes in that dimension (otherwise the
    wrap edge would duplicate an existing edge or form a loop).
    @raise Invalid_argument on nonpositive dimensions or on wrapping a
    dimension of size < 3. *)

val graph : t -> Grid_graph.Graph.t
(** The underlying graph; nodes are row-major: [(i, j)] has handle
    [i * cols + j]. *)

val wrap : t -> wrap
val rows : t -> int
val cols : t -> int

val node : t -> row:int -> col:int -> Grid_graph.Graph.node
(** Handle of a coordinate pair.
    @raise Invalid_argument if out of range. *)

val coords : t -> Grid_graph.Graph.node -> int * int
(** [(row, col)] of a handle. *)

val row_nodes : t -> int -> Grid_graph.Graph.node list
(** The nodes of a row in column order — a path (simple) or a cycle
    (cylindrical/toroidal) in the grid. *)

val col_nodes : t -> int -> Grid_graph.Graph.node list
(** The nodes of a column in row order. *)

val row_segment : t -> row:int -> col_lo:int -> col_hi:int -> Grid_graph.Graph.node list
(** Nodes [(row, col_lo) ... (row, col_hi)] in increasing column order:
    a directed path along the row.
    @raise Invalid_argument on bad bounds. *)

val col_segment : t -> col:int -> row_lo:int -> row_hi:int -> Grid_graph.Graph.node list
(** Nodes [(row_lo, col) ... (row_hi, col)] in increasing row order. *)

val canonical_2_coloring : t -> int array
(** The parity coloring [(i + j) mod 2], proper for simple grids and for
    wrapped grids with even wrapped dimensions. *)

val canonical_3_coloring : t -> int array
(** A proper 3-coloring using colors [{0, 1, 2}]: stripes [j mod 3] on
    wrapped columns when [cols mod 3 = 0], parity elsewhere when
    bipartite.
    @raise Invalid_argument if neither recipe applies — use
    {!proper_3_coloring} for the general construction. *)

val proper_3_coloring : t -> int array
(** A proper 3-coloring of {e any} grid of this module (simple,
    cylindrical, or toroidal with both dimensions >= 3): color
    [(g i + f j) mod 3] where [f] and [g] are increment sequences with
    steps in [{1, 2}], and a wrapped dimension's steps sum to 0 mod 3
    (always arrangeable for length >= 2).  Witnesses the trivial
    O(sqrt n)-locality LOCAL upper bound that makes Corollary 1.2 tight. *)
