(** Triangular grids (Section 1).

    The triangular grid of side length [d] has nodes
    [{(x, y) : x, y >= 0, x + y <= d}], with edges between nodes at
    L1-distance 1 and between [(x, y)] and [(x+1, y-1)] (the
    anti-diagonal), i.e. the standard triangulation of a big triangle
    into unit triangles.  It is 3-partite, 3-chromatic, and admits a
    locally inferable unique 3-coloring with radius 1 (Definition 1.4):
    any connected fragment's tripartition is pinned down by the triangles
    in its 1-radius neighborhood (Figure 1 of the paper).

    {b Deviation from the paper's text:} Section 1 writes the diagonal
    condition as [x - x' = y - y'] (the {e main} diagonal), but on the
    node set [{x + y <= d}] that definition leaves the two apex corners
    [(d, 0)] and [(0, d)] with degree 1 and inside no triangle — the
    paper's own triangle-chain argument (and Definition 1.4 itself, as
    our exhaustive checker confirms) then fails at those corners.  The
    anti-diagonal matches the intended object in Figure 1 and restores
    every claim; the substitution is recorded in DESIGN.md. *)

type t

val create : side:int -> t
(** [create ~side] builds the triangular grid of side length [side >= 0].
    @raise Invalid_argument on negative side. *)

val graph : t -> Grid_graph.Graph.t
val side : t -> int

val node : t -> x:int -> y:int -> Grid_graph.Graph.node
(** Handle of a coordinate pair.
    @raise Invalid_argument if [(x, y)] is outside the triangle. *)

val coords : t -> Grid_graph.Graph.node -> int * int
(** [(x, y)] of a handle. *)

val mem : t -> x:int -> y:int -> bool
(** Whether the coordinate pair is a node. *)

val canonical_3_coloring : t -> int array
(** The unique (up to permutation) tripartition, as colors [{0, 1, 2}]:
    [(x - y) mod 3].  Proper because a unit step changes [x - y] by 1 and
    an anti-diagonal step changes it by 2, both nonzero mod 3. *)

val triangles_containing : t -> Grid_graph.Graph.node -> Grid_graph.Graph.node list list
(** All 3-cliques of the grid containing the given node, each as a sorted
    triple.  Used by the radius-1 oracle (Figure 1's triangle chains). *)
