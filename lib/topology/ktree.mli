(** k-trees (Section 1).

    A k-tree starts from a (k+1)-clique and grows by repeatedly attaching
    a new node to an existing k-clique.  k-trees are (k+1)-partite with a
    locally inferable unique (k+1)-coloring of radius 1: the (k+1)-cliques
    containing a fragment chain together through shared k-cliques, so
    fixing the colors of one clique fixes them all. *)

type t

val create : k:int -> n:int -> attach:(int -> int) -> t
(** [create ~k ~n ~attach] builds a k-tree on [n >= k+1] nodes.  Node
    [i >= k+1] is attached to the k-clique selected by
    [attach i mod number_of_available_k_cliques] — so [attach] is any
    shape function: [Fun.const 0] grows a "path-like" k-tree, a seeded
    random function grows a random one.
    @raise Invalid_argument if [k < 1] or [n < k+1]. *)

val random : k:int -> n:int -> seed:int -> t
(** A random k-tree with a self-contained PRNG. *)

val graph : t -> Grid_graph.Graph.t
val k : t -> int

val canonical_coloring : t -> int array
(** The construction coloring with colors [{0, ..., k}]: node [i] in the
    root clique gets color [i]; a later node gets the unique color absent
    from its attachment clique.  This is the unique (k+1)-coloring up to
    permutation. *)

val cliques : t -> Grid_graph.Graph.node array array
(** All maximal (k+1)-cliques, i.e. the nodes of the clique tree [H];
    entry 0 is the root clique, entry [i > 0] is the clique created when
    node [k + i] was attached.  Each is sorted. *)

val cliques_containing : t -> Grid_graph.Graph.node -> Grid_graph.Graph.node array list
(** The maximal cliques containing a node. *)
