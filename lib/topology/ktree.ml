open Grid_graph

type t = {
  k : int;
  graph : Graph.t;
  coloring : int array;
  cliques : Graph.node array array;
  membership : Graph.node array list array;  (* node -> maximal cliques through it *)
}

let k t = t.k
let graph t = t.graph
let canonical_coloring t = Array.copy t.coloring
let cliques t = t.cliques
let cliques_containing t v = t.membership.(v)

let create ~k ~n ~attach =
  if k < 1 then invalid_arg "Ktree.create: k must be >= 1";
  if n < k + 1 then invalid_arg "Ktree.create: need at least k+1 nodes";
  let coloring = Array.make n 0 in
  let edges = ref [] in
  (* Root (k+1)-clique on nodes 0..k, colored 0..k. *)
  for u = 0 to k do
    coloring.(u) <- u;
    for v = u + 1 to k do
      edges := (u, v) :: !edges
    done
  done;
  (* Available attachment points: the k-subcliques of existing maximal
     cliques.  Stored as sorted arrays of k nodes. *)
  let k_cliques = ref [||] in
  let push_subcliques clique =
    (* All k-subsets of a (k+1)-clique. *)
    let len = Array.length clique in
    let subs =
      Array.init len (fun skip ->
          Array.of_list
            (List.filteri (fun i _ -> i <> skip) (Array.to_list clique)))
    in
    k_cliques := Array.append !k_cliques subs
  in
  let root = Array.init (k + 1) (fun i -> i) in
  push_subcliques root;
  let maximal = ref [ root ] in
  for v = k + 1 to n - 1 do
    let avail = Array.length !k_cliques in
    let base = !k_cliques.(((attach v mod avail) + avail) mod avail) in
    let used = Array.map (fun u -> coloring.(u)) base in
    (* The attachment clique has k distinct colors; give v the missing one. *)
    let missing = ref (-1) in
    for c = 0 to k do
      if not (Array.exists (( = ) c) used) then missing := c
    done;
    coloring.(v) <- !missing;
    Array.iter (fun u -> edges := (u, v) :: !edges) base;
    let fresh = Array.of_list (List.sort compare (v :: Array.to_list base)) in
    maximal := fresh :: !maximal;
    push_subcliques fresh
  done;
  let graph = Graph.create ~n ~edges:!edges in
  let cliques = Array.of_list (List.rev !maximal) in
  let membership = Array.make n [] in
  Array.iter
    (fun clique -> Array.iter (fun u -> membership.(u) <- clique :: membership.(u)) clique)
    cliques;
  { k; graph; coloring; cliques; membership }

let random ~k ~n ~seed =
  let state = Random.State.make [| seed; k; n |] in
  create ~k ~n ~attach:(fun _ -> Random.State.int state 1_000_000_007)
