(** The layered hard instances [G_k] of Section 5.2.

    [G_2] is any base graph (the paper uses the [(sqrt n x sqrt n)] grid);
    [G_{i+1}] duplicates every node [u] of [G_i] into a twin [u*] adjacent
    to [u] and to all of [u]'s neighbors.  The new nodes form layer
    [H_{i+1}].  [G_k] is k-partite (Observation 5.2), has [2^{k-2} n]
    nodes (Observation 5.1) and admits a locally inferable unique
    k-coloring with radius [k] (Lemma 5.6). *)

type t

val create : base:Grid_graph.Graph.t -> k:int -> t
(** [create ~base ~k] builds [G_k] above the given base graph, for
    [k >= 2] ([k = 2] returns the base itself).  The base should be
    connected and bipartite for the k-partiteness and LIUC claims to
    apply; this is the caller's responsibility (checked in tests, not
    here, so hard-instance experiments can explore other bases).
    @raise Invalid_argument if [k < 2]. *)

val graph : t -> Grid_graph.Graph.t
val k : t -> int

val base_size : t -> int
(** Number of nodes of the base graph [G_2] (= layer [H_2]). *)

val layer : t -> Grid_graph.Graph.node -> int
(** The layer of a node, in [{2, ..., k}]. *)

val parent : t -> Grid_graph.Graph.node -> Grid_graph.Graph.node option
(** [pi(v)]: the node [v] duplicates, or [None] for layer-2 nodes. *)

val base_ancestor : t -> Grid_graph.Graph.node -> Grid_graph.Graph.node
(** [pi_diamond(v)]: iterate {!parent} down to layer 2 (identity there). *)

val duplicate_in_top_layer : t -> Grid_graph.Graph.node -> Grid_graph.Graph.node option
(** The twin [u*] of [u] created in the top layer [H_k], i.e. the node
    [v] in layer [k] with [parent v = Some u]; [None] when [k = 2] or
    when [u] itself is in the top layer. *)

val canonical_k_coloring : t -> int array
(** The proper k-coloring of Observation 5.2 with colors [{0..k-1}]:
    layer 2 carries the bipartition colors [{0, 1}] (via BFS on the
    base), layer [i >= 3] is colored [i - 1].
    @raise Invalid_argument if the base graph is not bipartite. *)
