open Grid_graph

type wrap = Simple | Cylindrical | Toroidal

type t = { wrap : wrap; rows : int; cols : int; graph : Graph.t }

let wrap g = g.wrap
let rows g = g.rows
let cols g = g.cols
let graph g = g.graph

let wraps_cols = function Simple -> false | Cylindrical | Toroidal -> true
let wraps_rows = function Simple | Cylindrical -> false | Toroidal -> true

let create wrap ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid2d.create: nonpositive dimension";
  if wraps_cols wrap && cols < 3 then
    invalid_arg "Grid2d.create: wrapping columns needs cols >= 3";
  if wraps_rows wrap && rows < 3 then
    invalid_arg "Grid2d.create: wrapping rows needs rows >= 3";
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := (id i j, id i (j + 1)) :: !edges;
      if i + 1 < rows then edges := (id i j, id (i + 1) j) :: !edges
    done;
    if wraps_cols wrap then edges := (id i (cols - 1), id i 0) :: !edges
  done;
  if wraps_rows wrap then
    for j = 0 to cols - 1 do
      edges := (id (rows - 1) j, id 0 j) :: !edges
    done;
  { wrap; rows; cols; graph = Graph.create ~n:(rows * cols) ~edges:!edges }

let node g ~row ~col =
  if row < 0 || row >= g.rows || col < 0 || col >= g.cols then
    invalid_arg "Grid2d.node: out of range";
  (row * g.cols) + col

let coords g v = (v / g.cols, v mod g.cols)

let row_nodes g i = List.init g.cols (fun j -> node g ~row:i ~col:j)
let col_nodes g j = List.init g.rows (fun i -> node g ~row:i ~col:j)

let row_segment g ~row ~col_lo ~col_hi =
  if col_lo > col_hi then invalid_arg "Grid2d.row_segment: empty range";
  List.init (col_hi - col_lo + 1) (fun d -> node g ~row ~col:(col_lo + d))

let col_segment g ~col ~row_lo ~row_hi =
  if row_lo > row_hi then invalid_arg "Grid2d.col_segment: empty range";
  List.init (row_hi - row_lo + 1) (fun d -> node g ~row:(row_lo + d) ~col)

let canonical_2_coloring g =
  Array.init (g.rows * g.cols) (fun v ->
      let i, j = coords g v in
      (i + j) mod 2)

(* An increment sequence for one dimension: [len] steps, each 1 or 2
   (mod 3), summing to 0 mod 3 when the dimension wraps.  The prefix sums
   give a labeling in which consecutive positions (and the wrap pair)
   always differ mod 3. *)
let increment_prefix ~len ~wraps =
  let steps = Array.make len 1 in
  if wraps then begin
    (* Make the total 0 mod 3 by upgrading (len mod 3) of the 1-steps to
       2-steps: total = len + upgrades = 0 (mod 3). *)
    let upgrades = (3 - (len mod 3)) mod 3 in
    if len < 2 && upgrades > 0 then
      invalid_arg "Grid2d.proper_3_coloring: wrapped dimension too short";
    for i = 0 to upgrades - 1 do
      steps.(i) <- 2
    done
  end;
  let prefix = Array.make len 0 in
  for i = 1 to len - 1 do
    prefix.(i) <- (prefix.(i - 1) + steps.(i - 1)) mod 3
  done;
  prefix

let proper_3_coloring g =
  let f = increment_prefix ~len:g.cols ~wraps:(wraps_cols g.wrap) in
  let gr = increment_prefix ~len:g.rows ~wraps:(wraps_rows g.wrap) in
  Array.init (g.rows * g.cols) (fun v ->
      let i, j = coords g v in
      (gr.(i) + f.(j)) mod 3)

let canonical_3_coloring g =
  let bipartite_ok =
    (not (wraps_cols g.wrap) || g.cols mod 2 = 0)
    && (not (wraps_rows g.wrap) || g.rows mod 2 = 0)
  in
  if bipartite_ok then canonical_2_coloring g
  else
    (* (i + j) mod 3 is proper whenever every wrapped dimension has size
       divisible by 3: each unit step changes the value by +-1 mod 3, and a
       wrap step changes it by -(size - 1) = +1 mod 3. *)
    let diag_ok =
      (not (wraps_cols g.wrap) || g.cols mod 3 = 0)
      && (not (wraps_rows g.wrap) || g.rows mod 3 = 0)
    in
    if diag_ok then
      Array.init (g.rows * g.cols) (fun v ->
          let i, j = coords g v in
          (i + j) mod 3)
    else invalid_arg "Grid2d.canonical_3_coloring: no canonical recipe applies"
