(** The gadget chain [G*] of Section 4: the hard instance for
    (2k-2)-coloring k-partite graphs.

    A gadget [A(k)] has node set [[k] x [k]]; two nodes are adjacent iff
    they are in neither the same row nor the same column.  [G*] chains
    [n'] gadgets, connecting nodes of consecutive gadgets under the same
    "different row and different column" rule.

    The {!create} function also exposes the adversary's relabeling power:
    an optional {e seam} index [s] builds the variant of [G*] in which the
    connection between gadgets [s] and [s+1] matches the row index on one
    side against the column index on the other.  The seam variant is
    isomorphic to [G*] (transpose every gadget after the seam), and its
    prefix and suffix induced subgraphs are byte-identical to the plain
    ones — which is exactly the freedom the Theorem 3 adversary uses. *)

type t

val create : ?seam:int -> k:int -> gadgets:int -> unit -> t
(** [create ~k ~gadgets ()] builds [G*] with [gadgets] gadgets of side
    [k].  With [?seam:s] (requiring [0 <= s < gadgets - 1]) the
    transposed connection is used between gadgets [s] and [s+1].
    @raise Invalid_argument if [k < 2], [gadgets < 1], or the seam is out
    of range. *)

val graph : t -> Grid_graph.Graph.t
val k : t -> int
val gadgets : t -> int
val seam : t -> int option

val node : t -> gadget:int -> row:int -> col:int -> Grid_graph.Graph.node
(** Handle of the node in position [(row, col)] of a gadget (all
    0-indexed).
    @raise Invalid_argument if out of range. *)

val coords : t -> Grid_graph.Graph.node -> int * int * int
(** [(gadget, row, col)] of a handle. *)

val gadget_nodes : t -> int -> Grid_graph.Graph.node list
(** The [k^2] nodes of one gadget, in row-major order. *)

val row_of_gadget : t -> gadget:int -> row:int -> Grid_graph.Graph.node list
(** The [k] nodes of one row of one gadget. *)

val col_of_gadget : t -> gadget:int -> col:int -> Grid_graph.Graph.node list
(** The [k] nodes of one column of one gadget. *)

val canonical_k_coloring : t -> int array
(** The proper k-coloring of Proposition 4.1: color every node by its row
    index (transposed after the seam, if any). *)
