open Grid_graph

type t = {
  k : int;
  base_size : int;
  graph : Graph.t;
  layer : int array;
  parent : int array;  (* -1 for the base layer *)
  twin : int array;  (* node -> its duplicate in the top layer, or -1 *)
}

let k t = t.k
let graph t = t.graph
let base_size t = t.base_size
let layer t v = t.layer.(v)
let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)

let rec base_ancestor t v =
  match parent t v with None -> v | Some u -> base_ancestor t u

let duplicate_in_top_layer t v = if t.twin.(v) < 0 then None else Some t.twin.(v)

let create ~base ~k =
  if k < 2 then invalid_arg "Layered.create: k must be >= 2";
  let base_size = Graph.n base in
  let rec grow current layer parent level =
    if level = k then (current, layer, parent)
    else begin
      let size = Graph.n current in
      (* Duplicate node u as u + size, adjacent to u and N(u). *)
      let extra = ref [] in
      Graph.iter_nodes current (fun u ->
          extra := (u, u + size) :: !extra;
          Array.iter
            (fun w -> extra := (u + size, w) :: !extra)
            (Graph.neighbors current u));
      let bigger =
        Graph.add_edges (Graph.union_disjoint current (Graph.empty size)) !extra
      in
      let layer' = Array.append layer (Array.make size (level + 1)) in
      let parent' = Array.append parent (Array.init size (fun u -> u)) in
      grow bigger layer' parent' (level + 1)
    end
  in
  let graph, layer, parent =
    grow base (Array.make base_size 2) (Array.make base_size (-1)) 2
  in
  let size = Graph.n graph in
  let twin = Array.make size (-1) in
  if k > 2 then begin
    let top_start = size / 2 in
    for v = top_start to size - 1 do
      twin.(parent.(v)) <- v
    done
  end;
  { k; base_size; graph; layer; parent; twin }

let canonical_k_coloring t =
  let base_nodes = List.init t.base_size (fun i -> i) in
  let emb = Subgraph.induced t.graph base_nodes in
  match Bipartite.two_color emb.Subgraph.graph with
  | None -> invalid_arg "Layered.canonical_k_coloring: base graph not bipartite"
  | Some side ->
      Array.init (Graph.n t.graph) (fun v ->
          if t.layer.(v) = 2 then side.(v) else t.layer.(v) - 1)
