let grid_coloring ?(glyphs = "012345678") grid color_of =
  let buf = Buffer.create 256 in
  for r = 0 to Grid2d.rows grid - 1 do
    if r > 0 then Buffer.add_char buf '\n';
    for c = 0 to Grid2d.cols grid - 1 do
      match color_of (Grid2d.node grid ~row:r ~col:c) with
      | Some col when col < String.length glyphs -> Buffer.add_char buf glyphs.[col]
      | Some _ -> Buffer.add_char buf '?'
      | None -> Buffer.add_char buf '.'
    done
  done;
  Buffer.contents buf

let region ~rows:(row_lo, row_hi) ~cols:(col_lo, col_hi) probe =
  let buf = Buffer.create 256 in
  for r = row_lo to row_hi do
    if r > row_lo then Buffer.add_char buf '\n';
    for c = col_lo to col_hi do
      match probe r c with
      | `Colored col when col < 10 -> Buffer.add_char buf (Char.chr (Char.code '0' + col))
      | `Colored _ -> Buffer.add_char buf '?'
      | `Seen -> Buffer.add_char buf 'o'
      | `Unseen -> Buffer.add_char buf ' '
    done
  done;
  Buffer.contents buf
