(** Connected components of a graph or of an induced node subset. *)

val components : Graph.t -> Graph.node list list
(** All connected components, each a sorted node list; components are
    ordered by their smallest node. *)

val component_of : Graph.t -> Graph.node -> Graph.node list
(** The sorted component containing the given node. *)

val is_connected : Graph.t -> bool
(** Whether the whole graph is one component ([true] on <= 1 nodes). *)

val components_within : Graph.t -> Graph.node list -> Graph.node list list
(** [components_within g subset] is the connected components of the
    subgraph of [g] induced by [subset]; used to split a revealed region
    into the "groups" of Section 5.1. *)

val is_connected_subset : Graph.t -> Graph.node list -> bool
(** Whether the induced subgraph on the (non-empty) subset is connected. *)
