let components_within g subset =
  let in_subset = Hashtbl.create (List.length subset * 2 + 1) in
  List.iter (fun v -> Hashtbl.replace in_subset v ()) subset;
  let visited = Hashtbl.create (List.length subset * 2 + 1) in
  let explore start =
    let queue = Queue.create () in
    Queue.add start queue;
    Hashtbl.replace visited start ();
    let comp = ref [] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      comp := u :: !comp;
      Array.iter
        (fun v ->
          if Hashtbl.mem in_subset v && not (Hashtbl.mem visited v) then begin
            Hashtbl.replace visited v ();
            Queue.add v queue
          end)
        (Graph.neighbors g u)
    done;
    List.sort compare !comp
  in
  let sorted_subset = List.sort_uniq compare subset in
  List.filter_map
    (fun v -> if Hashtbl.mem visited v then None else Some (explore v))
    sorted_subset

let components g =
  components_within g (List.init (Graph.n g) (fun i -> i))

let component_of g v =
  match components_within g (Bfs.ball g [ v ] max_int) with
  | [ comp ] -> comp
  | comps -> (
      match List.find_opt (List.mem v) comps with
      | Some comp -> comp
      | None -> assert false)

let is_connected g =
  Graph.n g <= 1 || List.length (components g) = 1

let is_connected_subset g subset =
  match components_within g subset with [ _ ] -> true | _ -> false
