type node = int

type t = { size : int; adj : int array array; edge_count : int }

let n g = g.size
let m g = g.edge_count

let check_endpoint size v =
  if v < 0 || v >= size then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0,%d)" v size)

let dedup_sorted a =
  let len = Array.length a in
  if len <= 1 then a
  else begin
    let out = ref [] and count = ref 0 in
    for i = len - 1 downto 0 do
      if i = 0 || a.(i) <> a.(i - 1) then begin
        out := a.(i) :: !out;
        incr count
      end
    done;
    Array.of_list !out
  end

let of_arcs size arcs =
  (* [arcs] is a list of directed arcs; we symmetrize, sort and dedup. *)
  let buckets = Array.make size [] in
  List.iter
    (fun (u, v) ->
      check_endpoint size u;
      check_endpoint size v;
      if u = v then invalid_arg "Graph: self-loop";
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    arcs;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        dedup_sorted a)
      buckets
  in
  let edge_count = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { size; adj; edge_count }

let create ~n:size ~edges =
  if size < 0 then invalid_arg "Graph.create: negative size";
  of_arcs size edges

let of_adjacency raw =
  let size = Array.length raw in
  let arcs = ref [] in
  Array.iteri (fun u nbrs -> Array.iter (fun v -> arcs := (u, v) :: !arcs) nbrs) raw;
  of_arcs size !arcs

let neighbors g v =
  check_endpoint g.size v;
  g.adj.(v)

let degree g v = Array.length (neighbors g v)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let mem_edge g u v =
  check_endpoint g.size u;
  check_endpoint g.size v;
  let a = g.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let iter_edges g f =
  Array.iteri (fun u nbrs -> Array.iter (fun v -> if u < v then f u v) nbrs) g.adj

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = List.rev (fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

let iter_nodes g f =
  for v = 0 to g.size - 1 do
    f v
  done

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun v -> acc := f !acc v);
  !acc

let equal g h = g.size = h.size && g.adj = h.adj

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.size g.edge_count;
  iter_edges g (fun u v -> Format.fprintf ppf "%d -- %d@," u v);
  Format.fprintf ppf "@]"

let empty size = create ~n:size ~edges:[]

let complete size =
  let edges = ref [] in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      edges := (u, v) :: !edges
    done
  done;
  create ~n:size ~edges:!edges

let path_graph size =
  let edges = List.init (max 0 (size - 1)) (fun i -> (i, i + 1)) in
  create ~n:size ~edges

let cycle_graph size =
  if size < 3 then invalid_arg "Graph.cycle_graph: need at least 3 nodes";
  let edges = (size - 1, 0) :: List.init (size - 1) (fun i -> (i, i + 1)) in
  create ~n:size ~edges

let union_disjoint g h =
  let off = g.size in
  let shifted = List.map (fun (u, v) -> (u + off, v + off)) (edges h) in
  create ~n:(g.size + h.size) ~edges:(edges g @ shifted)

let add_edges g es = create ~n:g.size ~edges:(es @ edges g)

let is_clique g vs =
  let rec pairwise = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> mem_edge g v w) rest && pairwise rest
  in
  pairwise vs
