(** Directed walks: the carriers of the b-value machinery of Section 3.

    A walk is a node sequence in which consecutive nodes are adjacent in
    the host graph.  The paper's "directed path" and "directed cycle" are
    walks; simplicity (no repeated nodes) is checked separately because
    Lemma 3.5 holds for arbitrary walks while Lemma 3.4 needs simple
    cycles. *)

type t = Graph.node list
(** A walk as the list of visited nodes, in order.  A cycle of length
    [l] is represented by its [l] distinct nodes; the closing edge from
    the last node back to the first is implicit. *)

val is_walk : Graph.t -> t -> bool
(** Whether consecutive nodes are adjacent ([true] for walks of <= 1
    node). *)

val is_path : Graph.t -> t -> bool
(** A walk with no repeated node. *)

val is_cycle : Graph.t -> t -> bool
(** At least 3 distinct nodes, consecutive ones adjacent, and the last
    adjacent to the first. *)

val length : t -> int
(** Number of edges in a path ([length p = |p| - 1], 0 for empty or
    singleton walks). *)

val cycle_length : t -> int
(** Number of edges in a cycle, i.e. the number of nodes. *)

val reverse : t -> t
(** The same walk traversed backwards. *)

val arcs : t -> (Graph.node * Graph.node) list
(** Consecutive (directed) arcs of a path. *)

val cycle_arcs : t -> (Graph.node * Graph.node) list
(** Consecutive arcs of a cycle, including the closing arc. *)

val concat : t -> t -> t
(** [concat p q] glues two paths where [p] ends at the node [q] starts
    at; the shared node appears once.
    @raise Invalid_argument if the endpoint and start differ. *)
