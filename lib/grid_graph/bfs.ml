let distances_from g sources =
  let dist = Array.make (Graph.n g) max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let distance g u v =
  let dist = distances_from g [ u ] in
  dist.(v)

let ball g us t =
  let dist = distances_from g us in
  Graph.fold_nodes g ~init:[] ~f:(fun acc v ->
      if dist.(v) <= t then v :: acc else acc)
  |> List.rev

module Frontier = struct
  type t = {
    g : Graph.t;
    slack : int array;
    (* [slack.(v) = s >= 0] means every node within distance [s] of [v]
       has been revealed by some earlier [reveal]; [-1] means [v] itself
       is unrevealed.  This is the pruning certificate: a bounded BFS
       that reaches [v] with [rem] remaining steps can stop expanding
       when [slack.(v) >= rem]. *)
    mark : int array; (* epoch stamps: visited this traversal? *)
    dist : int array; (* distance from the current center, per epoch *)
    queue : int array; (* scratch FIFO; a bounded BFS enqueues each node at most once *)
    mutable epoch : int;
  }

  let create g =
    let n = Graph.n g in
    {
      g;
      slack = Array.make n (-1);
      mark = Array.make n 0;
      dist = Array.make n 0;
      queue = Array.make (max n 1) 0;
      epoch = 0;
    }

  let revealed t v = t.slack.(v) >= 0

  let ball t c r =
    t.epoch <- t.epoch + 1;
    let ep = t.epoch in
    let q = t.queue in
    let head = ref 0 and tail = ref 0 in
    t.mark.(c) <- ep;
    t.dist.(c) <- 0;
    q.(!tail) <- c;
    incr tail;
    while !head < !tail do
      let u = q.(!head) in
      incr head;
      let du = t.dist.(u) in
      if du < r then
        Array.iter
          (fun v ->
            if t.mark.(v) <> ep then begin
              t.mark.(v) <- ep;
              t.dist.(v) <- du + 1;
              q.(!tail) <- v;
              incr tail
            end)
          (Graph.neighbors t.g u)
    done;
    let out = Array.sub q 0 !tail in
    Array.sort compare out;
    Array.to_list out

  let reveal t c r =
    t.epoch <- t.epoch + 1;
    let ep = t.epoch in
    let q = t.queue in
    let head = ref 0 and tail = ref 0 in
    t.mark.(c) <- ep;
    t.dist.(c) <- 0;
    q.(!tail) <- c;
    incr tail;
    let fresh = ref [] in
    while !head < !tail do
      let u = q.(!head) in
      incr head;
      let rem = r - t.dist.(u) in
      if t.slack.(u) < 0 then fresh := u :: !fresh;
      if t.slack.(u) < rem then begin
        t.slack.(u) <- rem;
        if rem > 0 then
          let du1 = t.dist.(u) + 1 in
          Array.iter
            (fun v ->
              if t.mark.(v) <> ep then begin
                t.mark.(v) <- ep;
                t.dist.(v) <- du1;
                q.(!tail) <- v;
                incr tail
              end)
            (Graph.neighbors t.g u)
      end
    done;
    List.sort compare !fresh
end

let eccentricity g v =
  let dist = distances_from g [ v ] in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Bfs.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let shortest_path g u v =
  let dist = distances_from g [ u ] in
  if dist.(v) = max_int then None
  else begin
    (* Walk back from [v] along strictly decreasing distances. *)
    let rec back w acc =
      if w = u then w :: acc
      else
        let prev =
          Array.fold_left
            (fun found x ->
              match found with
              | Some _ -> found
              | None -> if dist.(x) = dist.(w) - 1 then Some x else None)
            None (Graph.neighbors g w)
        in
        match prev with
        | Some p -> back p (w :: acc)
        | None -> assert false
    in
    Some (back v [])
  end
