let distances_from g sources =
  let dist = Array.make (Graph.n g) max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let distance g u v =
  let dist = distances_from g [ u ] in
  dist.(v)

let ball g us t =
  let dist = distances_from g us in
  Graph.fold_nodes g ~init:[] ~f:(fun acc v ->
      if dist.(v) <= t then v :: acc else acc)
  |> List.rev

let eccentricity g v =
  let dist = distances_from g [ v ] in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Bfs.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let shortest_path g u v =
  let dist = distances_from g [ u ] in
  if dist.(v) = max_int then None
  else begin
    (* Walk back from [v] along strictly decreasing distances. *)
    let rec back w acc =
      if w = u then w :: acc
      else
        let prev =
          Array.fold_left
            (fun found x ->
              match found with
              | Some _ -> found
              | None -> if dist.(x) = dist.(w) - 1 then Some x else None)
            None (Graph.neighbors g w)
        in
        match prev with
        | Some p -> back p (w :: acc)
        | None -> assert false
    in
    Some (back v [])
  end
