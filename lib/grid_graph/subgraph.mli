(** Induced subgraphs with explicit node renaming.

    The Online-LOCAL executor repeatedly presents the algorithm with the
    subgraph induced by the revealed region [G_i = G[∪ B(v_j, T)]]
    (Section 2.2).  An {!embedding} records how the subgraph's dense
    node handles map back into the host graph. *)

type embedding = {
  graph : Graph.t;  (** the induced subgraph, nodes renumbered densely *)
  to_host : Graph.node array;  (** subgraph node -> host node *)
  of_host : (Graph.node, Graph.node) Hashtbl.t;  (** host node -> subgraph node *)
}

val induced : Graph.t -> Graph.node list -> embedding
(** [induced g subset] is the subgraph of [g] induced by [subset]
    (deduplicated, sorted) together with both direction maps. *)

val of_host_exn : embedding -> Graph.node -> Graph.node
(** Map a host node into the subgraph.
    @raise Not_found if the host node is not in the subgraph. *)

val mem_host : embedding -> Graph.node -> bool
(** Whether a host node belongs to the subgraph. *)
