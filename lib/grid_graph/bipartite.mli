(** Bipartiteness testing and 2-coloring.

    The unique bipartition of a connected bipartite graph is the engine of
    the Akbari et al. upper bound (Section 5.1.1): every connected bipartite
    graph has a locally inferable unique 2-coloring with radius 0. *)

val two_color : Graph.t -> int array option
(** [two_color g] is [Some side] with [side.(v)] in [{0, 1}] describing a
    proper 2-coloring, or [None] if the graph has an odd cycle.  Each
    connected component is colored independently, with its smallest node
    on side 0 — so the result is canonical per component. *)

val is_bipartite : Graph.t -> bool
(** Whether the graph admits a proper 2-coloring. *)

val odd_cycle : Graph.t -> Graph.node list option
(** [odd_cycle g] is a witness odd closed walk when the graph is not
    bipartite (a cycle as a node list without the repeated endpoint);
    [None] when bipartite. *)
