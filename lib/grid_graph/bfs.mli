(** Breadth-first search: distances, balls and eccentricities.

    The paper's models are phrased in terms of the radius-[t] neighborhood
    [B(U, t)] of a node set [U] (Section 2); {!ball} is its direct
    implementation. *)

val distances_from : Graph.t -> Graph.node list -> int array
(** [distances_from g sources] is the array of hop distances from the
    closest source; unreachable nodes get [max_int]. *)

val distance : Graph.t -> Graph.node -> Graph.node -> int
(** Pairwise distance; [max_int] when disconnected. *)

val ball : Graph.t -> Graph.node list -> int -> Graph.node list
(** [ball g us t] is [B(us, t)]: every node within distance [t] of some
    node of [us], in increasing node order.  [ball g us 0] is [us]
    itself (sorted, deduplicated). *)

val eccentricity : Graph.t -> Graph.node -> int
(** Largest finite distance from the node; 0 on a single reachable node.
    @raise Invalid_argument if the graph is disconnected from the node. *)

val shortest_path : Graph.t -> Graph.node -> Graph.node -> Graph.node list option
(** [shortest_path g u v] is a shortest [u]-[v] path as a node list
    starting with [u] and ending with [v], or [None] if disconnected. *)
