(** Breadth-first search: distances, balls and eccentricities.

    The paper's models are phrased in terms of the radius-[t] neighborhood
    [B(U, t)] of a node set [U] (Section 2); {!ball} is its direct
    implementation. *)

val distances_from : Graph.t -> Graph.node list -> int array
(** [distances_from g sources] is the array of hop distances from the
    closest source; unreachable nodes get [max_int]. *)

val distance : Graph.t -> Graph.node -> Graph.node -> int
(** Pairwise distance; [max_int] when disconnected. *)

val ball : Graph.t -> Graph.node list -> int -> Graph.node list
(** [ball g us t] is [B(us, t)]: every node within distance [t] of some
    node of [us], in increasing node order.  [ball g us 0] is [us]
    itself (sorted, deduplicated). *)

module Frontier : sig
  (** Incremental revealed-view maintenance for the game executors.

      A [Frontier.t] is persistent per-game BFS state over a fixed host
      graph: epoch-marked scratch arrays plus a per-node {e slack}
      certificate ([slack(v) = s] means [B(v, s)] is already fully
      revealed).  Each {!reveal} extends the revealed region from the
      previous frontier instead of re-running {!val:ball} from scratch,
      so a game of [k] reveals costs O(sum of frontier sizes) instead of
      O(k * (n + m)).  Allocation per call is limited to the returned
      list; traversal state is reused across calls.

      See [lib/online_local/README.md] ("Anatomy of a game step") for
      how the executors use this. *)

  type t

  val create : Graph.t -> t
  (** [create g] is an empty frontier over [g] (no node revealed).
      O(n) allocation, done once per game. *)

  val revealed : t -> Graph.node -> bool
  (** Whether the node has been returned by some earlier {!reveal}.
      O(1), allocation-free. *)

  val ball : t -> Graph.node -> int -> Graph.node list
  (** [ball t c r] is [B(c, r)] in increasing node order — byte-identical
      to [Bfs.ball g [c] r] — via a {e bounded} BFS touching only
      O(|B(c, r)|) nodes rather than the whole graph.  Does not change
      the revealed region. *)

  val reveal : t -> Graph.node -> int -> Graph.node list
  (** [reveal t c r] marks [B(c, r)] revealed and returns the {e fresh}
      nodes (those not revealed before this call) in increasing node
      order — byte-identical to filtering [Bfs.ball g [c] r] against the
      previously revealed set.  Slack pruning stops the traversal at any
      node whose known-revealed radius covers the remaining budget, so
      re-revealing an interior region costs O(1) and a typical step
      costs O(frontier), not O(region). *)
end

val eccentricity : Graph.t -> Graph.node -> int
(** Largest finite distance from the node; 0 on a single reachable node.
    @raise Invalid_argument if the graph is disconnected from the node. *)

val shortest_path : Graph.t -> Graph.node -> Graph.node -> Graph.node list option
(** [shortest_path g u v] is a shortest [u]-[v] path as a node list
    starting with [u] and ending with [v], or [None] if disconnected. *)
