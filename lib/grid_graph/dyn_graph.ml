type t = {
  mutable size : int;
  mutable adj : (int, unit) Hashtbl.t array;  (* neighbor sets, grown by doubling *)
}

let create () = { size = 0; adj = Array.init 16 (fun _ -> Hashtbl.create 4) }

let ensure_capacity g wanted =
  let cap = Array.length g.adj in
  if wanted > cap then begin
    let fresh = Array.init (max wanted (2 * cap)) (fun _ -> Hashtbl.create 4) in
    Array.blit g.adj 0 fresh 0 cap;
    g.adj <- fresh
  end

let add_node g =
  ensure_capacity g (g.size + 1);
  let v = g.size in
  g.size <- g.size + 1;
  v

let check g v =
  if v < 0 || v >= g.size then invalid_arg "Dyn_graph: unknown handle"

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Dyn_graph: self-loop";
  Hashtbl.replace g.adj.(u) v ();
  Hashtbl.replace g.adj.(v) u ()

let n g = g.size

let mem_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.adj.(u) v

let neighbors g v =
  check g v;
  Hashtbl.fold (fun w () acc -> w :: acc) g.adj.(v) []

let snapshot g =
  let edges = ref [] in
  for u = 0 to g.size - 1 do
    Hashtbl.iter (fun v () -> if u < v then edges := (u, v) :: !edges) g.adj.(u)
  done;
  Graph.create ~n:g.size ~edges:!edges
