type t = Graph.node list

let rec consecutive_ok g = function
  | a :: (b :: _ as rest) -> Graph.mem_edge g a b && consecutive_ok g rest
  | [ _ ] | [] -> true

let is_walk g w = consecutive_ok g w

let is_path g w =
  is_walk g w && List.length (List.sort_uniq compare w) = List.length w

let is_cycle g w =
  match w with
  | a :: _ :: _ :: _ ->
      is_path g w
      &&
      let last = List.nth w (List.length w - 1) in
      Graph.mem_edge g last a
  | _ -> false

let length w = max 0 (List.length w - 1)
let cycle_length w = List.length w
let reverse = List.rev

let arcs w =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | [ _ ] | [] -> []
  in
  go w

let cycle_arcs w =
  match w with
  | [] -> []
  | first :: _ ->
      let rec go = function
        | a :: (b :: _ as rest) -> (a, b) :: go rest
        | [ last ] -> [ (last, first) ]
        | [] -> []
      in
      go w

let concat p q =
  match (List.rev p, q) with
  | [], _ -> q
  | _, [] -> p
  | last :: _, start :: tail ->
      if last <> start then invalid_arg "Walk.concat: endpoints differ"
      else p @ tail
