type embedding = {
  graph : Graph.t;
  to_host : Graph.node array;
  of_host : (Graph.node, Graph.node) Hashtbl.t;
}

let induced g subset =
  let nodes = List.sort_uniq compare subset in
  let to_host = Array.of_list nodes in
  let of_host = Hashtbl.create (Array.length to_host * 2 + 1) in
  Array.iteri (fun i v -> Hashtbl.replace of_host v i) to_host;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt of_host w with
          | Some j when i < j -> edges := (i, j) :: !edges
          | Some _ | None -> ())
        (Graph.neighbors g v))
    to_host;
  { graph = Graph.create ~n:(Array.length to_host) ~edges:!edges; to_host; of_host }

let of_host_exn emb v = Hashtbl.find emb.of_host v
let mem_host emb v = Hashtbl.mem emb.of_host v
