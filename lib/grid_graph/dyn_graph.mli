(** A growable simple undirected graph with stable node handles.

    The Online-LOCAL executors grow the revealed region monotonically:
    nodes enter when first seen and never leave, and edges are only ever
    added.  Handles are allocated densely in discovery order and stay
    valid forever, which is what lets an algorithm keep per-node state
    across reveals. *)

type t

val create : unit -> t

val add_node : t -> Graph.node
(** Allocate a fresh node; handles are [0, 1, 2, ...] in order. *)

val add_edge : t -> Graph.node -> Graph.node -> unit
(** Add an undirected edge; duplicates are ignored.
    @raise Invalid_argument on self-loops or unknown handles. *)

val n : t -> int
(** Number of allocated nodes. *)

val mem_edge : t -> Graph.node -> Graph.node -> bool

val neighbors : t -> Graph.node -> Graph.node list
(** Current neighbors (unsorted). *)

val snapshot : t -> Graph.t
(** An immutable copy of the current graph; handles coincide. *)
