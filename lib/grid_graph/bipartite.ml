let two_color_with_conflict g =
  let size = Graph.n g in
  let side = Array.make size (-1) in
  let parent = Array.make size (-1) in
  let conflict = ref None in
  let queue = Queue.create () in
  (try
     for start = 0 to size - 1 do
       if side.(start) = -1 then begin
         side.(start) <- 0;
         Queue.add start queue;
         while not (Queue.is_empty queue) do
           let u = Queue.pop queue in
           Array.iter
             (fun v ->
               if side.(v) = -1 then begin
                 side.(v) <- 1 - side.(u);
                 parent.(v) <- u;
                 Queue.add v queue
               end
               else if side.(v) = side.(u) then begin
                 conflict := Some (u, v);
                 raise Exit
               end)
             (Graph.neighbors g u)
         done
       end
     done
   with Exit -> ());
  match !conflict with
  | None -> Ok side
  | Some (u, v) -> Error (u, v, parent)

let two_color g =
  match two_color_with_conflict g with Ok side -> Some side | Error _ -> None

let is_bipartite g = Option.is_some (two_color g)

let odd_cycle g =
  match two_color_with_conflict g with
  | Ok _ -> None
  | Error (u, v, parent) ->
      (* Walk both conflict endpoints up the BFS forest to their lowest
         common ancestor; the two branches plus the edge form an odd cycle. *)
      let ancestors w =
        let rec up w acc = if w = -1 then acc else up parent.(w) (w :: acc) in
        up w []
      in
      let pu = ancestors u and pv = ancestors v in
      let rec strip xs ys last =
        match (xs, ys) with
        | x :: xs', y :: ys' when x = y -> strip xs' ys' (Some x)
        | _ -> (xs, ys, last)
      in
      let tail_u, tail_v, lca = strip pu pv None in
      let lca = match lca with Some w -> w | None -> assert false in
      Some ((lca :: tail_u) @ List.rev tail_v)
