(** Classic union-find (disjoint set forest) with path compression and
    union by size.  Used by the models layer to maintain the "groups"
    (connected components of the revealed region) that the Online-LOCAL
    algorithms of Section 5 merge as the adversary reveals nodes. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> int
(** [union uf a b] merges the two sets and returns the representative of
    the merged set.  Idempotent when [a] and [b] are already together. *)

val same : t -> int -> int -> bool
(** Whether two elements are in the same set. *)

val size : t -> int -> int
(** Number of elements in the set containing the given element. *)

val count : t -> int
(** Current number of distinct sets. *)
