(** Packed integer coordinates and allocation-light containers.

    The executor hot paths key revealed cells by a {e single} immediate
    integer instead of an [(int * int)] pair, removing per-probe boxing
    and polymorphic hashing.  The encoding and the invariants it must
    preserve are recorded in DESIGN.md ("Packed coordinates and executor
    invariants"). *)

module Coord : sig
  (** A coordinate [(row, col)] packed into one OCaml [int] as
      [(row lsl 31) lor ((col + 2{^30}) land (2{^31}-1))].

      The column is biased by [2{^30}] so both row and column admit
      negative values while [k + 1]/[k - 1] step one column and
      [k + row_step]/[k - row_step] step one row by plain integer
      arithmetic — no carry crosses the row/column boundary anywhere in
      the valid range.  Valid range: [|row| < 2{^29}] and
      [|col| < 2{^29}]; packing order is lexicographic in [(row, col)],
      so sorting packed keys sorts coordinates. *)

  val pack : int -> int -> int
  (** [pack r c] packs without a range check — O(1), hot path. *)

  val pack_checked : int -> int -> int
  (** Like {!pack} but raises [Invalid_argument] outside the valid
      range.  Used once per fresh coordinate at reveal time. *)

  val row : int -> int
  (** Row of a packed key. *)

  val col : int -> int
  (** Column of a packed key. *)

  val unpack : int -> int * int
  (** [unpack k] is [(row k, col k)]. *)

  val in_range : int -> int -> bool
  (** Whether [(r, c)] lies in the packable range [|r|, |c| < 2{^29}]. *)

  val row_step : int
  (** Additive offset of one row: [pack (r+1) c = pack r c + row_step]. *)

  val north : int -> int
  (** [north k] is the cell one row up ([row - 1]). O(1). *)

  val south : int -> int
  (** [south k] is the cell one row down ([row + 1]). O(1). *)

  val west : int -> int
  (** [west k] is the cell one column left ([col - 1]). O(1). *)

  val east : int -> int
  (** [east k] is the cell one column right ([col + 1]). O(1). *)
end

module Table : sig
  (** Open-addressing [int -> int] hash table with linear probing.

      No deletion — the executors only accumulate bindings.  All
      operations are O(1) amortized with load kept below 50%; probes
      allocate nothing.  Keys must avoid {!empty_key} ([min_int]), which
      {!Coord.pack} never produces in range. *)

  type t

  val empty_key : int
  (** The reserved sentinel key ([min_int]). *)

  val create : ?capacity:int -> unit -> t
  (** Fresh table sized for [capacity] bindings (default 16). *)

  val length : t -> int
  (** Number of bindings. O(1). *)

  val set : t -> int -> int -> unit
  (** [set t k v] binds [k] to [v], replacing any previous binding. *)

  val mem : t -> int -> bool
  (** Whether [k] is bound. Allocation-free. *)

  val find_default : t -> int -> default:int -> int
  (** Binding of [k], or [default] when unbound. Allocation-free. *)

  val find_opt : t -> int -> int option
  (** Binding of [k] as an option. *)

  val fold : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
  (** Fold over bindings in unspecified order — callers must be
      order-insensitive (see DESIGN.md invariants). *)

  val iter : t -> f:(int -> int -> unit) -> unit
  (** Iterate over bindings in unspecified order. *)

  val clear : t -> unit
  (** Remove all bindings, keeping the allocated capacity. *)
end

module Set : sig
  (** Dense byte-backed set over [0 .. n-1]. *)

  type t

  val create : int -> t
  (** [create n] is the empty set over universe [0 .. n-1]. *)

  val mem : t -> int -> bool
  (** Membership test. O(1), allocation-free, no bounds check. *)

  val add : t -> int -> unit
  (** Insert an element. O(1). *)

  val cardinal : t -> int
  (** Number of elements. O(1). *)
end
