(** Immutable, simple, undirected graphs over nodes [0 .. n-1].

    This is the substrate every topology and model in the library is built
    on.  Graphs are stored as sorted adjacency arrays, so neighbor iteration
    is cache-friendly and edge membership is a binary search.  All
    constructors deduplicate edges and reject self-loops, keeping every
    value of type {!t} a simple graph as required by the paper's
    preliminaries (Section 2). *)

type node = int
(** Nodes are dense integer handles in [0 .. n-1]. *)

type t
(** An immutable simple undirected graph. *)

val create : n:int -> edges:(node * node) list -> t
(** [create ~n ~edges] builds a graph on [n] nodes with the given edge
    list.  Duplicate edges (in either orientation) are collapsed.
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val of_adjacency : int array array -> t
(** [of_adjacency adj] builds a graph from a raw adjacency structure;
    symmetry is enforced (an arc in either direction yields the edge).
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val neighbors : t -> node -> node array
(** [neighbors g v] is the sorted array of neighbors of [v].  The returned
    array is owned by the graph and must not be mutated. *)

val degree : t -> node -> int
(** Degree of a node. *)

val max_degree : t -> int
(** Maximum degree over all nodes; 0 for the empty graph. *)

val mem_edge : t -> node -> node -> bool
(** [mem_edge g u v] tests edge membership in O(log degree). *)

val iter_edges : t -> (node -> node -> unit) -> unit
(** [iter_edges g f] calls [f u v] once per undirected edge, with [u < v]. *)

val fold_edges : t -> init:'a -> f:('a -> node -> node -> 'a) -> 'a
(** Edge fold; visits each undirected edge once with [u < v]. *)

val edges : t -> (node * node) list
(** All edges as pairs [(u, v)] with [u < v], in lexicographic order. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Iterate over all nodes in increasing order. *)

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a
(** Fold over all nodes in increasing order. *)

val equal : t -> t -> bool
(** Structural equality: same node count and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump ([n] plus the edge list), for debugging. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] nodes. *)

val complete : int -> t
(** [complete n] is the clique K_n. *)

val path_graph : int -> t
(** [path_graph n] is the path 0 - 1 - ... - (n-1). *)

val cycle_graph : int -> t
(** [cycle_graph n] is the cycle on [n >= 3] nodes.
    @raise Invalid_argument if [n < 3]. *)

val union_disjoint : t -> t -> t
(** [union_disjoint g h] places [h] next to [g]: nodes of [h] are shifted
    by [n g].  No edges are added between the parts. *)

val add_edges : t -> (node * node) list -> t
(** [add_edges g es] is [g] with the extra edges; duplicates are fine. *)

val is_clique : t -> node list -> bool
(** [is_clique g vs] checks that the (distinct) nodes [vs] are pairwise
    adjacent. *)
