(* Packed integer coordinates and allocation-light containers keyed by
   them.  See DESIGN.md, "Packed coordinates and executor invariants". *)

module Coord = struct
  let col_bits = 31
  let col_mask = (1 lsl col_bits) - 1 (* 0x7fffffff *)
  let col_bias = 1 lsl (col_bits - 1) (* 0x40000000 *)
  let bound = 1 lsl 29

  let pack r c = (r lsl col_bits) lor ((c + col_bias) land col_mask)
  let row k = k asr col_bits
  let col k = (k land col_mask) - col_bias
  let unpack k = (row k, col k)
  let in_range r c = r > -bound && r < bound && c > -bound && c < bound

  let pack_checked r c =
    if not (in_range r c) then invalid_arg "Packed.Coord.pack_checked: out of range";
    pack r c

  (* With the column biased into [0, 2^31), adding or subtracting 1 moves
     one column and adding or subtracting [row_step] moves one row, with
     no carry across the row/column boundary anywhere inside the valid
     range.  This is what lets the executors probe the four grid
     neighbours with plain integer arithmetic. *)
  let row_step = 1 lsl col_bits
  let north k = k - row_step
  let south k = k + row_step
  let west k = k - 1
  let east k = k + 1
end

module Table = struct
  (* Open-addressing int -> int hash table with linear probing.  No
     deletion (the executors only ever add bindings); [clear] recycles
     the arrays.  Capacity is a power of two and load is kept under
     50%. *)

  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable mask : int;
    mutable count : int;
  }

  (* [min_int] has all of bits 62..31 set as a row and is outside
     [Coord]'s valid range, so it can never be produced by [pack] on an
     in-range coordinate. *)
  let empty_key = min_int

  let create ?(capacity = 16) () =
    let cap = ref 16 in
    while !cap < capacity * 2 do
      cap := !cap * 2
    done;
    {
      keys = Array.make !cap empty_key;
      vals = Array.make !cap 0;
      mask = !cap - 1;
      count = 0;
    }

  let length t = t.count

  let slot t k =
    let h = k * 0x2545F4914F6CDD1D in
    let h = h lxor (h lsr 31) in
    let i = ref (h land t.mask) in
    while
      let k' = t.keys.(!i) in
      k' <> empty_key && k' <> k
    do
      i := (!i + 1) land t.mask
    done;
    !i

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let cap = (t.mask + 1) * 2 in
    t.keys <- Array.make cap empty_key;
    t.vals <- Array.make cap 0;
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k <> empty_key then begin
          let j = slot t k in
          t.keys.(j) <- k;
          t.vals.(j) <- old_vals.(i)
        end)
      old_keys

  let set t k v =
    let i = slot t k in
    if t.keys.(i) = empty_key then begin
      t.keys.(i) <- k;
      t.vals.(i) <- v;
      t.count <- t.count + 1;
      if t.count * 2 > t.mask then grow t
    end
    else t.vals.(i) <- v

  let mem t k = t.keys.(slot t k) <> empty_key

  let find_default t k ~default =
    let i = slot t k in
    if t.keys.(i) = empty_key then default else t.vals.(i)

  let find_opt t k =
    let i = slot t k in
    if t.keys.(i) = empty_key then None else Some t.vals.(i)

  let fold t ~init ~f =
    let acc = ref init in
    Array.iteri
      (fun i k -> if k <> empty_key then acc := f !acc k t.vals.(i))
      t.keys;
    !acc

  let iter t ~f =
    Array.iteri (fun i k -> if k <> empty_key then f k t.vals.(i)) t.keys

  let clear t =
    Array.fill t.keys 0 (Array.length t.keys) empty_key;
    t.count <- 0
end

module Set = struct
  type t = { bits : Bytes.t; mutable count : int }

  let create n = { bits = Bytes.make (max n 1) '\000'; count = 0 }
  let mem t i = Bytes.unsafe_get t.bits i <> '\000'
  let cardinal t = t.count

  let add t i =
    if Bytes.unsafe_get t.bits i = '\000' then begin
      Bytes.unsafe_set t.bits i '\001';
      t.count <- t.count + 1
    end
end
