type t = { parent : int array; set_size : int array; mutable sets : int }

let create size =
  { parent = Array.init size (fun i -> i); set_size = Array.make size 1; sets = size }

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let root = find uf p in
    uf.parent.(x) <- root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra = rb then ra
  else begin
    let big, small =
      if uf.set_size.(ra) >= uf.set_size.(rb) then (ra, rb) else (rb, ra)
    in
    uf.parent.(small) <- big;
    uf.set_size.(big) <- uf.set_size.(big) + uf.set_size.(small);
    uf.sets <- uf.sets - 1;
    big
  end

let same uf a b = find uf a = find uf b
let size uf x = uf.set_size.(find uf x)
let count uf = uf.sets
